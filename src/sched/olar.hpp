#pragma once
// OLAR-style optimal task assignment (Pilla, arXiv:2010.00239) over the
// fleet tier's closed-form LinearCosts view.
//
// Shards are assigned one at a time to the client whose cost *after* taking
// the shard is smallest (lowest client id on ties). For cost functions that
// are non-decreasing in the load — Property 1, guaranteed by LinearCosts —
// this greedy provably minimizes the synchronous-round makespan: at every
// step the partial assignment's maximum is the smallest achievable for the
// shards placed so far, so the final makespan equals the exact Fed-LBAP
// optimum (tests/sched/test_minenergy.cpp pins the equality against the
// CostMatrix oracles).
//
// Unlike fed_lbap_bucketed there is no quantization: the heap-based greedy is
// exact at O(D log n) for D shards over n clients, which stays tractable at
// fleet scale because D is shards, not samples.

#include <cstddef>

#include "obs/trace.hpp"
#include "sched/linear_costs.hpp"
#include "sched/types.hpp"

namespace fedsched::sched {

struct OlarResult {
  Assignment assignment;
  double makespan_seconds = 0.0;
  /// Sum of busy users' costs under the final assignment.
  double total_time_seconds = 0.0;
  /// Greedy steps executed (== total shards assigned).
  std::size_t steps = 0;
};

/// Assign total_shards over the costs view. Throws if the total capacity
/// cannot host total_shards. A non-null `trace` receives one `sched_olar`
/// decision event (users, shards, makespan).
OlarResult olar(const LinearCosts& costs, std::size_t total_shards,
                obs::TraceWriter* trace = nullptr);

}  // namespace fedsched::sched
