#pragma once
// Bucketed variants of Fed-LBAP and Fed-MinAvg for fleet-scale n where the
// exact algorithms' O(ns log ns) sort over the full cost matrix is
// prohibitive. Costs are quantized into B histogram buckets spanning
// [min single-shard cost, max full-row cost]:
//
//  - fed_lbap_bucketed binary-searches the B+1 bucket boundaries instead of
//    the ns distinct matrix values; each feasibility probe is O(n) via
//    LinearCosts' closed-form budgets, so planning runs in O(n log B) plus
//    the surplus trim. The chosen threshold is the smallest feasible
//    boundary, which is strictly less than c* + width, so the achieved
//    makespan is within one bucket width of the exact optimum.
//  - fed_minavg_bucketed runs the greedy shard loop over per-bucket min-heaps
//    with lazy deletion instead of an O(n) argmin scan per shard: each step
//    picks the lowest-id client whose current candidate cost falls in the
//    lowest non-empty bucket, i.e. the exact greedy up to one bucket width.
//
// Accuracy contract (enforced by tests/sched/test_bucketed.cpp): makespan
// within one bucket width of the exact oracle, and assignments *identical*
// to the exact algorithms once the bucket width drops below the smallest gap
// between distinct cost values. The exact small-n paths (fed_lbap,
// fed_minavg, lbap_bruteforce) remain the oracles.

#include <cstddef>
#include <vector>

#include "obs/trace.hpp"
#include "sched/linear_costs.hpp"
#include "sched/types.hpp"

namespace fedsched::sched {

struct BucketedLbapResult {
  Assignment assignment;
  double makespan_seconds = 0.0;
  /// Chosen bucket boundary (>= the exact c*, < c* + bucket_width).
  double threshold_seconds = 0.0;
  double bucket_width = 0.0;
  std::size_t buckets = 0;
  std::size_t search_iterations = 0;
  std::size_t trimmed_shards = 0;
};

/// Algorithm 1 over bucket boundaries. Throws if the fleet's total capacity
/// cannot host total_shards or buckets == 0.
BucketedLbapResult fed_lbap_bucketed(const LinearCosts& costs,
                                     std::size_t total_shards, std::size_t buckets,
                                     obs::TraceWriter* trace = nullptr);

struct BucketedMinAvgResult {
  Assignment assignment;
  double makespan_seconds = 0.0;
  /// Sum of busy users' costs (the greedy's objective).
  double total_time_seconds = 0.0;
  double bucket_width = 0.0;
  std::size_t buckets = 0;
  std::size_t steps = 0;
};

/// Algorithm 2's greedy loop on bucket heaps, time-only: the fleet tier models
/// IID shards, so the class-coverage accuracy term of the exact fed_minavg is
/// zero by construction and only compute + comm time drives the choice.
BucketedMinAvgResult fed_minavg_bucketed(const LinearCosts& costs,
                                         std::size_t total_shards,
                                         std::size_t buckets,
                                         obs::TraceWriter* trace = nullptr);

}  // namespace fedsched::sched
