#include "sched/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedsched::sched {

AssignmentAnalysis analyze(const std::vector<UserProfile>& users,
                           const Assignment& assignment) {
  const auto times = epoch_times(users, assignment);
  AssignmentAnalysis analysis;
  double sum = 0.0;
  for (double t : times) {
    if (t <= 0.0) continue;
    ++analysis.participants;
    sum += t;
    analysis.makespan_seconds = std::max(analysis.makespan_seconds, t);
  }
  if (analysis.participants == 0) return analysis;
  analysis.mean_seconds = sum / static_cast<double>(analysis.participants);
  analysis.straggler_gap =
      (analysis.makespan_seconds - analysis.mean_seconds) / analysis.mean_seconds;
  analysis.utilization = analysis.mean_seconds / analysis.makespan_seconds;
  return analysis;
}

namespace {

/// Largest sample count user j can process within `budget_s` (monotone
/// bisection over the time model; capped by the capacity in samples).
std::size_t samples_within(const UserProfile& user, double budget_s,
                           std::size_t hard_cap) {
  if (user.epoch_seconds(1) > budget_s) return 0;
  std::size_t lo = 1, hi = 2;
  while (hi <= hard_cap && user.epoch_seconds(hi) <= budget_s) {
    lo = hi;
    hi *= 2;
  }
  hi = std::min(hi, hard_cap + 1);
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (user.epoch_seconds(mid) <= budget_s) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

double fractional_makespan_lower_bound(const std::vector<UserProfile>& users,
                                       std::size_t total_samples,
                                       std::size_t capacity_shard_size,
                                       double tolerance_s) {
  if (users.empty()) throw std::invalid_argument("lower_bound: no users");
  if (capacity_shard_size == 0) {
    throw std::invalid_argument("lower_bound: zero capacity shard size");
  }
  if (total_samples == 0) return 0.0;

  auto feasible = [&](double t) {
    std::size_t hosted = 0;
    for (const UserProfile& user : users) {
      // Convert the shard capacity into samples, saturating on overflow.
      const std::size_t cap =
          user.capacity_shards >= total_samples / capacity_shard_size + 1
              ? total_samples
              : std::min(total_samples, user.capacity_shards * capacity_shard_size);
      hosted += samples_within(user, t, cap);
      if (hosted >= total_samples) return true;
    }
    return false;
  };

  // Bracket: lo infeasible (or zero), hi feasible.
  double hi = 1.0;
  int doublings = 0;
  while (!feasible(hi)) {
    hi *= 2.0;
    if (++doublings > 60) {
      throw std::invalid_argument("lower_bound: capacities cannot host the dataset");
    }
  }
  double lo = 0.0;
  while (hi - lo > tolerance_s) {
    const double mid = lo + (hi - lo) / 2.0;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double optimality_gap(const std::vector<UserProfile>& users,
                      const Assignment& assignment, std::size_t total_samples) {
  const double bound = fractional_makespan_lower_bound(users, total_samples);
  if (bound <= 0.0) return 0.0;
  return makespan(users, assignment) / bound - 1.0;
}

}  // namespace fedsched::sched
