#pragma once
// Fed-LBAP (Algorithm 1): joint data partitioning + assignment for IID data.
//
// Minimizes the per-epoch makespan  max_j (T_j^c(D_j) + T_j^u + T_j^d)
// subject to sum_j D_j = D. Because every cost row is non-decreasing in the
// shard count (Property 1), the optimal makespan is the smallest matrix value
// c* whose per-user "budgets" A_j(c*) = max{k : C_jk <= c*} sum to at least
// D (Property 2's relaxed matching). We binary-search c* over the sorted
// matrix values and then trim the budgets down to exactly D shards, removing
// the shard with the largest *marginal* cost C_jk − C_j(k−1) first so the
// final assignment is makespan-optimal and average-lean.
//
// Complexity: O(ns log ns) for the sort, O(log(ns)) search iterations, each
// O(n log s) — matching the paper's bound (O(n^2 log n) when s = n).

#include "obs/trace.hpp"
#include "sched/cost_matrix.hpp"
#include "sched/types.hpp"

namespace fedsched::sched {

struct LbapResult {
  Assignment assignment;
  double makespan_seconds = 0.0;   // max user cost of the final assignment
  /// The binary-searched threshold c* — an upper bound on every user's cost
  /// (makespan_seconds <= threshold_seconds; equal before trimming).
  double threshold_seconds = 0.0;
  std::size_t search_iterations = 0;
  /// Surplus shards removed by the trim loop after the search.
  std::size_t trimmed_shards = 0;
};

/// Solve over a prebuilt cost matrix. Throws if the total capacity across
/// users cannot host `total_shards`. A non-null `trace` receives one
/// `sched_lbap` decision event (threshold, iterations, trim count, shards).
[[nodiscard]] LbapResult fed_lbap(const CostMatrix& matrix, std::size_t total_shards,
                                  obs::TraceWriter* trace = nullptr);

/// Convenience: build the cost matrix from profiles and solve.
[[nodiscard]] LbapResult fed_lbap(const std::vector<UserProfile>& users,
                                  std::size_t total_shards, std::size_t shard_size,
                                  obs::TraceWriter* trace = nullptr);

/// Exhaustive minimum-makespan search (O(s^n)); testing oracle for small
/// instances only.
[[nodiscard]] LbapResult lbap_bruteforce(const CostMatrix& matrix,
                                         std::size_t total_shards);

}  // namespace fedsched::sched
