#include "data/synth.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace fedsched::data {

namespace {

struct Blob {
  float cy, cx, sigma, amplitude;
};

/// Render blobs into one channel plane with an integer translation.
void render_plane(std::span<float> plane, std::size_t h, std::size_t w,
                  std::span<const Blob> blobs, int dy, int dx) {
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      float value = 0.0f;
      for (const Blob& b : blobs) {
        const float fy = static_cast<float>(y) - (b.cy + static_cast<float>(dy));
        const float fx = static_cast<float>(x) - (b.cx + static_cast<float>(dx));
        value += b.amplitude * std::exp(-(fy * fy + fx * fx) / (2.0f * b.sigma * b.sigma));
      }
      plane[y * w + x] += value;
    }
  }
}

/// Class prototypes: blobs_per_class blobs per channel, seeded per class so the
/// same config always yields the same visual classes.
std::vector<std::vector<Blob>> make_prototypes(const SynthConfig& cfg) {
  std::vector<std::vector<Blob>> prototypes(cfg.classes * cfg.channels);
  common::Rng rng(cfg.prototype_seed);
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    for (std::size_t ch = 0; ch < cfg.channels; ++ch) {
      auto& blobs = prototypes[c * cfg.channels + ch];
      blobs.reserve(cfg.blobs_per_class);
      for (std::size_t b = 0; b < cfg.blobs_per_class; ++b) {
        Blob blob;
        blob.cy = static_cast<float>(rng.uniform(1.5, static_cast<double>(cfg.height) - 2.5));
        blob.cx = static_cast<float>(rng.uniform(1.5, static_cast<double>(cfg.width) - 2.5));
        blob.sigma = static_cast<float>(rng.uniform(0.9, 2.2));
        blob.amplitude = static_cast<float>(rng.uniform(0.7, 1.3)) *
                         (rng.bernoulli(0.25) ? -1.0f : 1.0f);
        blobs.push_back(blob);
      }
    }
  }
  return prototypes;
}

}  // namespace

SynthConfig mnist_like() {
  SynthConfig cfg;
  cfg.name = "MNIST";
  cfg.classes = 10;
  cfg.channels = 1;
  cfg.height = 12;
  cfg.width = 12;
  cfg.blobs_per_class = 3;
  cfg.noise = 0.30f;
  cfg.background = 0.0f;
  cfg.max_shift = 1;
  cfg.prototype_seed = 17;
  return cfg;
}

SynthConfig cifar_like() {
  SynthConfig cfg;
  cfg.name = "CIFAR10";
  cfg.classes = 10;
  cfg.channels = 3;
  cfg.height = 16;
  cfg.width = 16;
  cfg.blobs_per_class = 4;
  cfg.noise = 1.50f;   // lands scaled LeNet near the paper's ~0.6 CIFAR band
  cfg.background = 1.0f;
  cfg.max_shift = 2;
  cfg.prototype_seed = 71;
  return cfg;
}

Dataset generate(const SynthConfig& cfg, const std::vector<std::size_t>& counts,
                 std::uint64_t seed) {
  if (counts.size() != cfg.classes) {
    throw std::invalid_argument("generate: counts size != classes");
  }
  const auto prototypes = make_prototypes(cfg);
  // Shared clutter blobs appear in every class, forcing overlap (CIFAR-like).
  common::Rng proto_rng(cfg.prototype_seed ^ 0xB0B0B0B0ULL);
  std::vector<Blob> clutter;
  if (cfg.background > 0.0f) {
    for (int b = 0; b < 4; ++b) {
      Blob blob;
      blob.cy = static_cast<float>(proto_rng.uniform(0.0, static_cast<double>(cfg.height)));
      blob.cx = static_cast<float>(proto_rng.uniform(0.0, static_cast<double>(cfg.width)));
      blob.sigma = static_cast<float>(proto_rng.uniform(1.5, 3.5));
      blob.amplitude = cfg.background;
      clutter.push_back(blob);
    }
  }

  std::size_t total = 0;
  for (std::size_t n : counts) total += n;
  const std::size_t features = cfg.channels * cfg.height * cfg.width;
  tensor::Tensor images({total, features});
  std::vector<std::uint16_t> labels(total);

  common::Rng rng(seed);
  std::size_t row = 0;
  for (std::size_t c = 0; c < cfg.classes; ++c) {
    for (std::size_t i = 0; i < counts[c]; ++i, ++row) {
      labels[row] = static_cast<std::uint16_t>(c);
      const int dy = static_cast<int>(rng.uniform_int(-cfg.max_shift, cfg.max_shift));
      const int dx = static_cast<int>(rng.uniform_int(-cfg.max_shift, cfg.max_shift));
      float* sample = images.raw() + row * features;
      for (std::size_t ch = 0; ch < cfg.channels; ++ch) {
        auto plane = std::span<float>(sample + ch * cfg.height * cfg.width,
                                      cfg.height * cfg.width);
        render_plane(plane, cfg.height, cfg.width,
                     prototypes[c * cfg.channels + ch], dy, dx);
        if (!clutter.empty()) {
          // Clutter moves independently of the class pattern.
          const int cy = static_cast<int>(rng.uniform_int(-2, 2));
          const int cx = static_cast<int>(rng.uniform_int(-2, 2));
          render_plane(plane, cfg.height, cfg.width, clutter, cy, cx);
        }
        for (float& px : plane) px += static_cast<float>(rng.gaussian(0.0, cfg.noise));
      }
    }
  }
  return {std::move(images), std::move(labels), cfg.classes, cfg.channels, cfg.height,
          cfg.width};
}

Dataset generate_balanced(const SynthConfig& cfg, std::size_t total, std::uint64_t seed) {
  return generate(cfg, balanced_counts(total, cfg.classes), seed);
}

std::vector<std::size_t> balanced_counts(std::size_t total, std::size_t classes) {
  if (classes == 0) throw std::invalid_argument("balanced_counts: zero classes");
  std::vector<std::size_t> counts(classes, total / classes);
  for (std::size_t c = 0; c < total % classes; ++c) ++counts[c];
  return counts;
}

}  // namespace fedsched::data
