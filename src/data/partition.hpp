#pragma once
// Partitioning a dataset across federated users.
//
// These utilities produce the data distributions of the paper's experiments:
//   - stratified IID splits (Equal baseline / FedAvg),
//   - Gaussian size imbalance at a controllable imbalance ratio (Fig 2),
//   - n-class non-IID splits (Fig 3a),
//   - explicit class-set assignments (Fig 3b outliers, Table IV scenarios),
//   - materialization of scheduler outputs (per-user sample counts).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace fedsched::data {

/// Row indices of the source dataset held by each user.
struct Partition {
  std::vector<std::vector<std::size_t>> user_indices;

  [[nodiscard]] std::size_t users() const noexcept { return user_indices.size(); }
  [[nodiscard]] std::vector<std::size_t> sizes() const;
  [[nodiscard]] std::size_t total() const noexcept;
  /// Ratio of size stddev to size mean — the paper's "imbalance ratio".
  [[nodiscard]] double imbalance_ratio() const;
};

/// Classes present in each user's share.
[[nodiscard]] std::vector<std::vector<std::uint16_t>> class_sets_of(
    const Partition& partition, const Dataset& ds);

/// Stratified IID split into n equal shares (class ratios preserved).
[[nodiscard]] Partition partition_equal_iid(const Dataset& ds, std::size_t n_users,
                                            common::Rng& rng);

/// Stratified IID split with explicit per-user sizes. sum(sizes) <= ds.size();
/// each user's share keeps classes as balanced as the sizes allow.
[[nodiscard]] Partition partition_with_sizes_iid(const Dataset& ds,
                                                 const std::vector<std::size_t>& sizes,
                                                 common::Rng& rng);

/// Per-user sizes drawn from N(mean, ratio*mean), clipped at min_size and
/// rescaled to sum to total exactly.
[[nodiscard]] std::vector<std::size_t> gaussian_sizes(std::size_t total,
                                                      std::size_t n_users, double ratio,
                                                      common::Rng& rng,
                                                      std::size_t min_size = 1);

/// n-class non-IID (Fig 3a): every user holds a random subset of
/// classes_per_user classes; each class's samples are split across its
/// holders with random (seeded) proportions. Every class is guaranteed at
/// least one holder.
[[nodiscard]] Partition partition_nclass(const Dataset& ds, std::size_t n_users,
                                         std::size_t classes_per_user, common::Rng& rng);

/// Explicit class sets: user u receives sizes[u] samples drawn evenly from its
/// allowed classes (shared class pools are consumed first-come). A size of 0
/// with a non-empty class set yields an empty share. If a pool runs dry the
/// user gets fewer samples; callers can check Partition::sizes().
[[nodiscard]] Partition partition_by_class_sets(
    const Dataset& ds, const std::vector<std::vector<std::uint16_t>>& class_sets,
    const std::vector<std::size_t>& sizes, common::Rng& rng);

/// Split proportionally to weights (non-negative, at least one positive).
[[nodiscard]] std::vector<std::size_t> proportional_sizes(
    std::size_t total, const std::vector<double>& weights);

}  // namespace fedsched::data
