#include "data/scenarios.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedsched::data {

std::vector<std::vector<std::uint16_t>> Scenario::class_sets() const {
  std::vector<std::vector<std::uint16_t>> sets;
  sets.reserve(users.size());
  for (const auto& user : users) sets.push_back(user.classes);
  return sets;
}

Scenario scenario_s1() {
  return {"S(I)",
          {
              {"Nexus6", {0, 1, 2, 3, 4, 5, 6, 9}},
              {"Mate10", {2, 3, 4, 5, 6, 8}},
              {"Pixel2", {7, 8}},
          }};
}

Scenario scenario_s2() {
  return {"S(II)",
          {
              {"Nexus6", {1, 2, 5, 7}},
              {"Nexus6", {2, 6, 8}},
              {"Nexus6P", {0, 3, 8, 9}},
              {"Nexus6P", {0}},
              {"Mate10", {4, 9}},
              {"Pixel2", {0, 1, 2}},
          }};
}

Scenario scenario_s3() {
  return {"S(III)",
          {
              {"Nexus6", {2, 6, 8, 9}},
              {"Nexus6", {0, 1, 3, 7, 8, 9}},
              {"Nexus6", {9}},
              {"Nexus6", {0, 5}},
              {"Nexus6P", {2}},
              {"Nexus6P", {0, 1, 2, 4, 5}},
              {"Mate10", {1, 3, 4, 8}},
              {"Mate10", {9}},
              {"Pixel2", {1}},
              {"Pixel2", {0, 1, 2, 3, 7, 8}},
          }};
}

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> scenarios = {scenario_s1(), scenario_s2(),
                                                  scenario_s3()};
  return scenarios;
}

OutlierSetup make_outlier_setup(common::Rng& rng, std::size_t classes) {
  if (classes < 10) throw std::invalid_argument("make_outlier_setup: needs >= 10 classes");
  // Draw 9 distinct classes split 3/3/3 across the base users; the leftover
  // class (chosen among the unused ones) is the outlier's.
  const auto nine = rng.sample_without_replacement(classes, 9);
  OutlierSetup setup;
  setup.base_users.resize(3);
  for (std::size_t u = 0; u < 3; ++u) {
    for (std::size_t i = 0; i < 3; ++i) {
      setup.base_users[u].push_back(static_cast<std::uint16_t>(nine[u * 3 + i]));
    }
    std::sort(setup.base_users[u].begin(), setup.base_users[u].end());
  }
  std::vector<bool> used(classes, false);
  for (std::size_t c : nine) used[c] = true;
  std::vector<std::uint16_t> leftover;
  for (std::size_t c = 0; c < classes; ++c) {
    if (!used[c]) leftover.push_back(static_cast<std::uint16_t>(c));
  }
  setup.outlier_class = leftover[rng.uniform_int(leftover.size())];
  return setup;
}

std::vector<std::vector<std::uint16_t>> outlier_class_sets(const OutlierSetup& setup,
                                                           OutlierMode mode) {
  auto sets = setup.base_users;
  switch (mode) {
    case OutlierMode::kMissing:
      break;  // 3 users, 9 classes
    case OutlierMode::kSeparate:
      sets.push_back({setup.outlier_class});
      break;
    case OutlierMode::kMerge:
      sets.back().push_back(setup.outlier_class);
      std::sort(sets.back().begin(), sets.back().end());
      break;
  }
  return sets;
}

const char* outlier_mode_name(OutlierMode mode) noexcept {
  switch (mode) {
    case OutlierMode::kMissing: return "Missing";
    case OutlierMode::kSeparate: return "Separate";
    case OutlierMode::kMerge: return "Merge";
  }
  return "?";
}

}  // namespace fedsched::data
