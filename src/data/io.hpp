#pragma once
// Dataset and partition persistence.
//
// Binary dataset container (magic + dims + labels + float pixels) and a CSV
// partition format (one line per user: comma-separated row indices), so
// generated experiment inputs can be inspected, versioned and reloaded.

#include <string>

#include "data/dataset.hpp"
#include "data/partition.hpp"

namespace fedsched::data {

/// Write the dataset to `path` (creates parent directories).
void save_dataset(const Dataset& ds, const std::string& path);

/// Load a dataset saved by save_dataset. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] Dataset load_dataset(const std::string& path);

/// Write a partition as CSV: line u lists user u's row indices (may be empty).
void save_partition(const Partition& partition, const std::string& path);

/// Load a partition saved by save_partition. Validates indices against
/// `dataset_size` (pass Dataset::size()).
[[nodiscard]] Partition load_partition(const std::string& path,
                                       std::size_t dataset_size);

}  // namespace fedsched::data
