#include "data/io.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fedsched::data {

namespace {
constexpr std::uint32_t kMagic = 0x46534431;  // "FSD1"

void ensure_parent(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
}
}  // namespace

void save_dataset(const Dataset& ds, const std::string& path) {
  ensure_parent(path);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_dataset: cannot open " + path);

  const std::uint32_t magic = kMagic;
  const std::uint64_t dims[5] = {ds.size(), ds.classes(), ds.channels(), ds.height(),
                                 ds.width()};
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(dims), sizeof(dims));
  out.write(reinterpret_cast<const char*>(ds.labels().data()),
            static_cast<std::streamsize>(ds.size() * sizeof(std::uint16_t)));
  out.write(reinterpret_cast<const char*>(ds.images().raw()),
            static_cast<std::streamsize>(ds.images().numel() * sizeof(float)));
  if (!out) throw std::runtime_error("save_dataset: write failed for " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_dataset: cannot open " + path);

  std::uint32_t magic = 0;
  std::uint64_t dims[5] = {};
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(dims), sizeof(dims));
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_dataset: " + path + " is not a fedsched dataset");
  }
  const std::size_t n = dims[0], classes = dims[1], channels = dims[2],
                    height = dims[3], width = dims[4];
  const std::size_t features = channels * height * width;
  if (classes == 0 || features == 0 || n > (1ull << 32)) {
    throw std::runtime_error("load_dataset: implausible header in " + path);
  }

  std::vector<std::uint16_t> labels(n);
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(n * sizeof(std::uint16_t)));
  tensor::Tensor images({n, features});
  in.read(reinterpret_cast<char*>(images.raw()),
          static_cast<std::streamsize>(images.numel() * sizeof(float)));
  if (!in) throw std::runtime_error("load_dataset: truncated file " + path);
  return {std::move(images), std::move(labels), classes, channels, height, width};
}

void save_partition(const Partition& partition, const std::string& path) {
  ensure_parent(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_partition: cannot open " + path);
  for (const auto& share : partition.user_indices) {
    for (std::size_t i = 0; i < share.size(); ++i) {
      out << (i ? "," : "") << share[i];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_partition: write failed for " + path);
}

Partition load_partition(const std::string& path, std::size_t dataset_size) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_partition: cannot open " + path);
  Partition partition;
  std::string line;
  while (std::getline(in, line)) {
    auto& share = partition.user_indices.emplace_back();
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      if (field.empty()) continue;
      std::size_t pos = 0;
      const unsigned long long value = std::stoull(field, &pos);
      if (pos != field.size()) {
        throw std::runtime_error("load_partition: bad index '" + field + "'");
      }
      if (value >= dataset_size) {
        throw std::runtime_error("load_partition: index " + field +
                                 " out of range for dataset of " +
                                 std::to_string(dataset_size));
      }
      share.push_back(static_cast<std::size_t>(value));
    }
  }
  return partition;
}

}  // namespace fedsched::data
