#pragma once
// Fixed non-IID scenarios from the paper.
//
//   - S(I), S(II), S(III): the class distributions of Table IV, used by the
//     alpha/beta sweep (Fig 6) and the schedule dump (Table IV itself).
//   - The Fig 3(b) outlier constructions: Missing / Separate / Merge.
//
// Device identity is carried as the paper's phone-model string ("Nexus6",
// "Nexus6P", "Mate10", "Pixel2"); the device module resolves it to a spec.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace fedsched::data {

struct ScenarioUser {
  std::string device_model;             // phone model powering this user
  std::vector<std::uint16_t> classes;   // classes present in the local data
};

struct Scenario {
  std::string name;
  std::vector<ScenarioUser> users;

  [[nodiscard]] std::size_t size() const noexcept { return users.size(); }
  [[nodiscard]] std::vector<std::vector<std::uint16_t>> class_sets() const;
};

/// Table IV column "S(I)": 3 users.
[[nodiscard]] Scenario scenario_s1();
/// Table IV column "S(II)": 6 users.
[[nodiscard]] Scenario scenario_s2();
/// Table IV column "S(III)": 10 users.
[[nodiscard]] Scenario scenario_s3();

[[nodiscard]] const std::vector<Scenario>& all_scenarios();

/// Fig 3(b): three base users each holding 3 random classes (out of 10),
/// collectively covering exactly 9; the remaining class belongs to a one-class
/// outlier.
struct OutlierSetup {
  std::vector<std::vector<std::uint16_t>> base_users;  // 3 users x 3 classes
  std::uint16_t outlier_class = 0;
};

[[nodiscard]] OutlierSetup make_outlier_setup(common::Rng& rng, std::size_t classes = 10);

enum class OutlierMode {
  kMissing,   // outlier class absent from training entirely
  kSeparate,  // outlier participates as a fourth user
  kMerge,     // outlier class merged into the third user
};

/// Class sets of the participating users under the given mode.
[[nodiscard]] std::vector<std::vector<std::uint16_t>> outlier_class_sets(
    const OutlierSetup& setup, OutlierMode mode);

[[nodiscard]] const char* outlier_mode_name(OutlierMode mode) noexcept;

}  // namespace fedsched::data
