#pragma once
// Synthetic image datasets standing in for MNIST / CIFAR10.
//
// The paper's accuracy experiments need (a) learnable multi-class image data
// and (b) full control over the per-user class distribution. Real MNIST /
// CIFAR10 files are not available offline, so we generate deterministic
// Gaussian-blob classes:
//
//   prototype(class) = sum of a few seeded smooth blobs per channel
//   sample           = shift(prototype, ±2px) + pixel noise
//
// The "MNIST-like" configuration (1x12x12, low noise) trains to ~99% with the
// scaled LeNet; the "CIFAR-like" one (3x16x16, heavy noise + cross-class
// background clutter) saturates around 60-80%, mirroring the paper's accuracy
// bands so that the *relative* effects of imbalance and non-IIDness can be
// reproduced.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace fedsched::data {

struct SynthConfig {
  std::string name = "synthetic";
  std::size_t classes = 10;
  std::size_t channels = 1;
  std::size_t height = 12;
  std::size_t width = 12;
  std::size_t blobs_per_class = 3;
  float noise = 0.3f;          // stddev of per-pixel Gaussian noise
  float background = 0.0f;     // amplitude of class-independent clutter
  int max_shift = 2;           // uniform translation in [-max_shift, max_shift]
  std::uint64_t prototype_seed = 17;  // fixes the class prototypes
};

/// MNIST-like: well-separated single-channel digits surrogate.
[[nodiscard]] SynthConfig mnist_like();
/// CIFAR-like: noisy three-channel natural-image surrogate.
[[nodiscard]] SynthConfig cifar_like();

/// Generate counts[c] samples of each class c. Deterministic in (config, seed).
[[nodiscard]] Dataset generate(const SynthConfig& config,
                               const std::vector<std::size_t>& counts,
                               std::uint64_t seed);

/// Generate `total` samples spread evenly over the classes.
[[nodiscard]] Dataset generate_balanced(const SynthConfig& config, std::size_t total,
                                        std::uint64_t seed);

/// Even per-class counts summing to total (remainder spread over low classes).
[[nodiscard]] std::vector<std::size_t> balanced_counts(std::size_t total,
                                                       std::size_t classes);

}  // namespace fedsched::data
