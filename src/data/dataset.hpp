#pragma once
// In-memory labeled image dataset.

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedsched::data {

class Dataset {
 public:
  Dataset() = default;
  /// images: [N, channels*height*width]; labels: N entries in [0, classes).
  Dataset(tensor::Tensor images, std::vector<std::uint16_t> labels, std::size_t classes,
          std::size_t channels, std::size_t height, std::size_t width);

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t features() const noexcept {
    return channels_ * height_ * width_;
  }

  [[nodiscard]] const tensor::Tensor& images() const noexcept { return images_; }
  [[nodiscard]] std::span<const std::uint16_t> labels() const noexcept {
    return {labels_};
  }
  [[nodiscard]] std::uint16_t label(std::size_t i) const { return labels_.at(i); }

  /// Copy the selected rows into a new dataset (order preserved).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Copy rows [begin, end) into a batch tensor + label vector.
  void fill_batch(std::span<const std::size_t> indices, tensor::Tensor& batch,
                  std::vector<std::uint16_t>& labels) const;

  /// Per-class sample counts over the whole set.
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;
  /// Per-class sample counts over a subset of rows.
  [[nodiscard]] std::vector<std::size_t> class_histogram(
      std::span<const std::size_t> indices) const;

 private:
  tensor::Tensor images_;
  std::vector<std::uint16_t> labels_;
  std::size_t classes_ = 0;
  std::size_t channels_ = 0;
  std::size_t height_ = 0;
  std::size_t width_ = 0;
};

/// Indices of all samples of each class: result[c] lists rows with label c.
[[nodiscard]] std::vector<std::vector<std::size_t>> indices_by_class(const Dataset& ds);

}  // namespace fedsched::data
