#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/stats.hpp"

namespace fedsched::data {

std::vector<std::size_t> Partition::sizes() const {
  std::vector<std::size_t> out(user_indices.size());
  for (std::size_t u = 0; u < user_indices.size(); ++u) out[u] = user_indices[u].size();
  return out;
}

std::size_t Partition::total() const noexcept {
  std::size_t n = 0;
  for (const auto& ui : user_indices) n += ui.size();
  return n;
}

double Partition::imbalance_ratio() const {
  const auto ss = sizes();
  std::vector<double> xs(ss.begin(), ss.end());
  const double m = common::mean(xs);
  return m > 0.0 ? common::stddev(xs) / m : 0.0;
}

std::vector<std::vector<std::uint16_t>> class_sets_of(const Partition& partition,
                                                      const Dataset& ds) {
  std::vector<std::vector<std::uint16_t>> sets(partition.users());
  for (std::size_t u = 0; u < partition.users(); ++u) {
    const auto hist = ds.class_histogram(partition.user_indices[u]);
    for (std::size_t c = 0; c < hist.size(); ++c) {
      if (hist[c] > 0) sets[u].push_back(static_cast<std::uint16_t>(c));
    }
  }
  return sets;
}

Partition partition_equal_iid(const Dataset& ds, std::size_t n_users, common::Rng& rng) {
  std::vector<std::size_t> sizes(n_users, ds.size() / n_users);
  for (std::size_t u = 0; u < ds.size() % n_users; ++u) ++sizes[u];
  return partition_with_sizes_iid(ds, sizes, rng);
}

Partition partition_with_sizes_iid(const Dataset& ds,
                                   const std::vector<std::size_t>& sizes,
                                   common::Rng& rng) {
  if (sizes.empty()) throw std::invalid_argument("partition_with_sizes_iid: no users");
  const std::size_t total = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  if (total > ds.size()) {
    throw std::invalid_argument("partition_with_sizes_iid: requested more than dataset");
  }

  auto pools = indices_by_class(ds);
  for (auto& pool : pools) rng.shuffle(pool);
  std::vector<std::size_t> cursor(pools.size(), 0);

  Partition partition;
  partition.user_indices.resize(sizes.size());
  // Round-robin over classes per user keeps every share class-balanced up to
  // rounding — "the ratio between different classes is maintained uniform".
  for (std::size_t u = 0; u < sizes.size(); ++u) {
    auto& share = partition.user_indices[u];
    share.reserve(sizes[u]);
    std::size_t c = rng.uniform_int(pools.size());  // random starting class
    std::size_t taken = 0;
    std::size_t dry_classes = 0;
    while (taken < sizes[u] && dry_classes < pools.size()) {
      if (cursor[c] < pools[c].size()) {
        share.push_back(pools[c][cursor[c]++]);
        ++taken;
        dry_classes = 0;
      } else {
        ++dry_classes;
      }
      c = (c + 1) % pools.size();
    }
  }
  return partition;
}

std::vector<std::size_t> gaussian_sizes(std::size_t total, std::size_t n_users,
                                        double ratio, common::Rng& rng,
                                        std::size_t min_size) {
  if (n_users == 0) throw std::invalid_argument("gaussian_sizes: no users");
  if (ratio < 0.0) throw std::invalid_argument("gaussian_sizes: negative ratio");
  const double mean = static_cast<double>(total) / static_cast<double>(n_users);
  std::vector<double> raw(n_users);
  for (double& x : raw) {
    x = std::max(static_cast<double>(min_size), rng.gaussian(mean, ratio * mean));
  }
  // Rescale to the exact total, then fix integer rounding drift.
  const double sum = std::accumulate(raw.begin(), raw.end(), 0.0);
  std::vector<std::size_t> sizes(n_users);
  std::size_t assigned = 0;
  for (std::size_t u = 0; u < n_users; ++u) {
    sizes[u] = std::max(min_size,
                        static_cast<std::size_t>(raw[u] / sum * static_cast<double>(total)));
    assigned += sizes[u];
  }
  std::size_t u = 0;
  while (assigned < total) {
    ++sizes[u % n_users];
    ++assigned;
    ++u;
  }
  while (assigned > total) {
    const std::size_t idx = u % n_users;
    if (sizes[idx] > min_size) {
      --sizes[idx];
      --assigned;
    }
    ++u;
  }
  return sizes;
}

Partition partition_nclass(const Dataset& ds, std::size_t n_users,
                           std::size_t classes_per_user, common::Rng& rng) {
  const std::size_t k = ds.classes();
  if (classes_per_user == 0 || classes_per_user > k) {
    throw std::invalid_argument("partition_nclass: bad classes_per_user");
  }
  // Draw each user's class subset; re-draw until every class has a holder
  // (bounded retries — with n*c >= k this converges almost immediately).
  std::vector<std::vector<std::uint16_t>> sets(n_users);
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<bool> covered(k, false);
    for (std::size_t u = 0; u < n_users; ++u) {
      auto pick = rng.sample_without_replacement(k, classes_per_user);
      sets[u].assign(pick.begin(), pick.end());
      std::sort(sets[u].begin(), sets[u].end());
      for (std::size_t c : pick) covered[c] = true;
    }
    if (n_users * classes_per_user < k ||
        std::all_of(covered.begin(), covered.end(), [](bool b) { return b; })) {
      break;
    }
  }

  auto pools = indices_by_class(ds);
  for (auto& pool : pools) rng.shuffle(pool);

  Partition partition;
  partition.user_indices.resize(n_users);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<std::size_t> holders;
    for (std::size_t u = 0; u < n_users; ++u) {
      if (std::binary_search(sets[u].begin(), sets[u].end(),
                             static_cast<std::uint16_t>(c))) {
        holders.push_back(u);
      }
    }
    if (holders.empty()) continue;
    // Random proportions per holder ("each class may also have different
    // number of samples"): weights uniform in [0.5, 1.5].
    std::vector<double> weights(holders.size());
    for (double& w : weights) w = rng.uniform(0.5, 1.5);
    const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::size_t cursor = 0;
    for (std::size_t h = 0; h < holders.size(); ++h) {
      const std::size_t take =
          (h + 1 == holders.size())
              ? pools[c].size() - cursor
              : static_cast<std::size_t>(weights[h] / wsum *
                                         static_cast<double>(pools[c].size()));
      for (std::size_t i = 0; i < take && cursor < pools[c].size(); ++i, ++cursor) {
        partition.user_indices[holders[h]].push_back(pools[c][cursor]);
      }
    }
  }
  return partition;
}

Partition partition_by_class_sets(const Dataset& ds,
                                  const std::vector<std::vector<std::uint16_t>>& class_sets,
                                  const std::vector<std::size_t>& sizes,
                                  common::Rng& rng) {
  if (class_sets.size() != sizes.size()) {
    throw std::invalid_argument("partition_by_class_sets: sets/sizes length mismatch");
  }
  auto pools = indices_by_class(ds);
  for (auto& pool : pools) rng.shuffle(pool);
  std::vector<std::size_t> cursor(pools.size(), 0);

  Partition partition;
  partition.user_indices.resize(sizes.size());
  for (std::size_t u = 0; u < sizes.size(); ++u) {
    const auto& classes = class_sets[u];
    if (classes.empty() && sizes[u] > 0) {
      throw std::invalid_argument("partition_by_class_sets: nonzero size, empty class set");
    }
    auto& share = partition.user_indices[u];
    share.reserve(sizes[u]);
    std::size_t taken = 0;
    std::size_t dry = 0;
    std::size_t pos = 0;
    // Round-robin over the user's classes so its share stays class-balanced.
    while (taken < sizes[u] && dry < classes.size()) {
      const std::uint16_t c = classes[pos % classes.size()];
      if (c >= pools.size()) {
        throw std::invalid_argument("partition_by_class_sets: class out of range");
      }
      if (cursor[c] < pools[c].size()) {
        share.push_back(pools[c][cursor[c]++]);
        ++taken;
        dry = 0;
      } else {
        ++dry;
      }
      ++pos;
    }
  }
  return partition;
}

std::vector<std::size_t> proportional_sizes(std::size_t total,
                                            const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("proportional_sizes: no weights");
  double wsum = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("proportional_sizes: negative weight");
    wsum += w;
  }
  if (wsum <= 0.0) throw std::invalid_argument("proportional_sizes: zero weights");
  std::vector<std::size_t> sizes(weights.size(), 0);
  std::size_t assigned = 0;
  for (std::size_t u = 0; u < weights.size(); ++u) {
    sizes[u] = static_cast<std::size_t>(weights[u] / wsum * static_cast<double>(total));
    assigned += sizes[u];
  }
  // Distribute the rounding remainder to the largest weights.
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });
  std::size_t i = 0;
  while (assigned < total) {
    ++sizes[order[i % order.size()]];
    ++assigned;
    ++i;
  }
  return sizes;
}

}  // namespace fedsched::data
