#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedsched::data {

Dataset::Dataset(tensor::Tensor images, std::vector<std::uint16_t> labels,
                 std::size_t classes, std::size_t channels, std::size_t height,
                 std::size_t width)
    : images_(std::move(images)),
      labels_(std::move(labels)),
      classes_(classes),
      channels_(channels),
      height_(height),
      width_(width) {
  if (images_.rank() != 2) throw std::invalid_argument("Dataset: images must be 2-D");
  if (images_.dim(0) != labels_.size()) {
    throw std::invalid_argument("Dataset: image/label count mismatch");
  }
  if (images_.dim(1) != features()) {
    throw std::invalid_argument("Dataset: feature count mismatch");
  }
  for (std::uint16_t label : labels_) {
    if (label >= classes_) throw std::invalid_argument("Dataset: label out of range");
  }
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  const std::size_t f = features();
  tensor::Tensor images({indices.size(), f});
  std::vector<std::uint16_t> labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::subset: index out of range");
    std::copy_n(images_.raw() + src * f, f, images.raw() + i * f);
    labels[i] = labels_[src];
  }
  return {std::move(images), std::move(labels), classes_, channels_, height_, width_};
}

void Dataset::fill_batch(std::span<const std::size_t> indices, tensor::Tensor& batch,
                         std::vector<std::uint16_t>& labels) const {
  const std::size_t f = features();
  if (batch.rank() != 2 || batch.dim(0) != indices.size() || batch.dim(1) != f) {
    batch = tensor::Tensor({indices.size(), f});
  }
  labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) throw std::out_of_range("Dataset::fill_batch: index out of range");
    std::copy_n(images_.raw() + src * f, f, batch.raw() + i * f);
    labels[i] = labels_[src];
  }
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(classes_, 0);
  for (std::uint16_t label : labels_) ++hist[label];
  return hist;
}

std::vector<std::size_t> Dataset::class_histogram(
    std::span<const std::size_t> indices) const {
  std::vector<std::size_t> hist(classes_, 0);
  for (std::size_t i : indices) ++hist[labels_.at(i)];
  return hist;
}

std::vector<std::vector<std::size_t>> indices_by_class(const Dataset& ds) {
  std::vector<std::vector<std::size_t>> result(ds.classes());
  for (std::size_t i = 0; i < ds.size(); ++i) result[ds.label(i)].push_back(i);
  return result;
}

}  // namespace fedsched::data
