#pragma once
// Dense row-major float tensor.
//
// The training stack in src/nn only needs contiguous float storage with a
// shape attached: views, broadcasting and autograd live in the layers, not
// here. Keeping the tensor dumb makes every kernel's cost obvious, which is
// the property the paper's profiler exploits (time is linear in work).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace fedsched::tensor {

using Shape = std::vector<std::size_t>;

[[nodiscard]] std::size_t shape_numel(const Shape& shape) noexcept;
[[nodiscard]] std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> values);

  [[nodiscard]] static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor full(Shape shape, float value) {
    return {std::move(shape), value};
  }
  /// I.I.D. normal entries with the given stddev.
  [[nodiscard]] static Tensor randn(Shape shape, common::Rng& rng, float stddev = 1.0f);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const;

  [[nodiscard]] std::span<float> data() noexcept { return {data_}; }
  [[nodiscard]] std::span<const float> data() const noexcept { return {data_}; }
  [[nodiscard]] float* raw() noexcept { return data_.data(); }
  [[nodiscard]] const float* raw() const noexcept { return data_.data(); }

  [[nodiscard]] float& operator[](std::size_t flat) { return data_[flat]; }
  [[nodiscard]] float operator[](std::size_t flat) const { return data_[flat]; }

  /// Bounds-checked multi-dimensional access (debug/test convenience).
  [[nodiscard]] float& at(std::initializer_list<std::size_t> idx);
  [[nodiscard]] float at(std::initializer_list<std::size_t> idx) const;

  /// Reinterpret the shape; numel must be preserved.
  void reshape(Shape shape);

  void fill(float value) noexcept;
  void zero() noexcept { fill(0.0f); }

  // In-place arithmetic. Shapes must match exactly for tensor operands.
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float scalar) noexcept;
  /// this += scalar * rhs  (axpy; the FedAvg aggregation primitive).
  void add_scaled(const Tensor& rhs, float scalar);

  [[nodiscard]] float sum() const noexcept;
  [[nodiscard]] float abs_max() const noexcept;

  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  [[nodiscard]] std::size_t flat_index(std::initializer_list<std::size_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

[[nodiscard]] Tensor operator+(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator-(Tensor lhs, const Tensor& rhs);
[[nodiscard]] Tensor operator*(Tensor lhs, float scalar);

}  // namespace fedsched::tensor
