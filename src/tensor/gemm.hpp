#pragma once
// Cache-blocked, register-tiled single-precision GEMM engine.
//
// The nn layers spend nearly all their time in three GEMM variants (N·N,
// Tᴺ·N, N·Tᴺ). This engine serves all three through one strided interface:
// the caller describes op(A) and op(B) with (row, column) element strides, so
// a transposed operand is just a swapped stride pair — packing normalizes the
// layout before any arithmetic happens.
//
// Blocking scheme (BLIS-style, shrunk to the small-m / huge-n shapes the
// batch-level im2col path produces):
//   - the n dimension splits into panels of at most kNc columns; panels are
//     the unit of parallelism (disjoint output columns, no reductions);
//   - the k dimension splits into blocks of at most kKc; when op(B)'s columns
//     are contiguous (b_cs == 1: the NN/TN layouts) the kernels read B in
//     place and only the ragged last strip is packed; otherwise (NT) each
//     block packs a [kc, panel] slice of op(B) into kNr-wide column strips;
//   - the m dimension splits into blocks of at most kMc; each block packs a
//     [mc, kc] slice of op(A) into kMr-tall row strips;
//   - a kMr x kNr register-tile microkernel sweeps all full-width column
//     strips of a panel in a single call (amortizing dispatch overhead on the
//     small-k conv shapes), stamped per row count 1..kMr so m-edge strips do
//     no padded-row work, in two builds selected once at startup: a portable
//     scalar build and a hand-vectorized AVX build (separate mul/add — no
//     FMA, so both builds perform identical per-element float ops in the
//     same order and produce bit-identical results).
//
// Determinism contract: the panel boundaries are a pure function of n (never
// of the pool width), each panel writes a disjoint column range of C, and the
// k-accumulation order inside a panel is fixed — so the result is
// bit-identical run-to-run at any pool width, including fully serial. The
// accumulation order over k moreover matches the naive reference kernels
// whenever k <= kKc (a single k block), which covers every layer shape in
// this repo; beyond that the per-block grouping may differ from the reference
// by a few ULPs (tests/tensor/test_gemm_differential.cpp pins the bound).
//
// Workspace: packing buffers follow the repo's caller-allocates contract —
// the training layers own one Workspace per layer and reuse it across
// batches, so steady-state training performs no GEMM-related allocation.

#include <cstddef>
#include <vector>

#include "common/thread_pool.hpp"

namespace fedsched::tensor::gemm {

/// Microkernel tile: kMr rows by kNr columns of C held in registers.
inline constexpr std::size_t kMr = 4;
inline constexpr std::size_t kNr = 16;
/// Cache blocks. kKc bounds the packed-A strip (kMc*kKc floats ~ L2) and is
/// deliberately larger than every k this repo's layers produce, so the
/// k-accumulation order matches the reference kernels exactly.
inline constexpr std::size_t kMc = 64;
inline constexpr std::size_t kKc = 1024;
/// Column-panel width: the unit of (deterministic) parallelism.
inline constexpr std::size_t kNc = 384;

/// Reusable packing buffers. Each concurrent panel needs its own pair, so the
/// workspace holds one slot per panel index; ensure() grows the slot table
/// *before* the parallel region (never during it).
class Workspace {
 public:
  struct Buffers {
    std::vector<float> a_pack;
    std::vector<float> b_pack;
  };

  /// Grow to at least `count` slots (no-op when already large enough).
  void ensure(std::size_t count) {
    if (slots_.size() < count) slots_.resize(count);
  }
  [[nodiscard]] Buffers& slot(std::size_t i) { return slots_[i]; }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

 private:
  std::vector<Buffers> slots_;
};

/// C[m,n] = op(A)[m,k] * op(B)[k,n], C row-major and fully overwritten.
/// Element (i, kk) of op(A) is a[i * a_rs + kk * a_cs]; element (kk, j) of
/// op(B) is b[kk * b_rs + j * b_cs]. `ws` may be null (a local workspace is
/// used); `pool` may be null (panels run inline on the caller). Both choices
/// are invisible in the output bits.
void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t a_rs, std::size_t a_cs, const float* b, std::size_t b_rs,
          std::size_t b_cs, float* c, Workspace* ws, common::ThreadPool* pool);

/// Number of column panels gemm() uses for an n-column product — exposed so
/// callers can pre-size a Workspace: a pure function of n.
[[nodiscard]] std::size_t panel_count(std::size_t n) noexcept;

}  // namespace fedsched::tensor::gemm
