#include "tensor/ops.hpp"

#include <stdexcept>

#include "common/thread_pool.hpp"

namespace fedsched::tensor::ops {

namespace {
void require(bool condition, const char* what) {
  if (!condition) throw std::invalid_argument(what);
}

struct GemmDims {
  std::size_t m, k, n;
};

GemmDims check_nn(const Tensor& a, const Tensor& b, const Tensor& out,
                  const char* who) {
  require(a.rank() == 2 && b.rank() == 2 && out.rank() == 2, who);
  const GemmDims d{a.dim(0), a.dim(1), b.dim(1)};
  require(b.dim(0) == d.k, who);
  require(out.dim(0) == d.m && out.dim(1) == d.n, who);
  return d;
}

GemmDims check_tn(const Tensor& a, const Tensor& b, const Tensor& out,
                  const char* who) {
  require(a.rank() == 2 && b.rank() == 2 && out.rank() == 2, who);
  const GemmDims d{a.dim(1), a.dim(0), b.dim(1)};
  require(b.dim(0) == d.k, who);
  require(out.dim(0) == d.m && out.dim(1) == d.n, who);
  return d;
}

GemmDims check_nt(const Tensor& a, const Tensor& b, const Tensor& out,
                  const char* who) {
  require(a.rank() == 2 && b.rank() == 2 && out.rank() == 2, who);
  const GemmDims d{a.dim(0), a.dim(1), b.dim(0)};
  require(b.dim(1) == d.k, who);
  require(out.dim(0) == d.m && out.dim(1) == d.n, who);
  return d;
}

/// Unfold one image into `columns` with an arbitrary destination row stride
/// and column offset — shared by the per-sample and batch-level paths.
void im2col_into(std::span<const float> image, const Conv2dGeometry& g, float* pc,
                 std::size_t row_stride, std::size_t col_offset) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* dst = pc + row * row_stride + col_offset;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // Signed arithmetic: padding can take source coordinates negative.
          const long long iy =
              static_cast<long long>(oy * g.stride + ky) - static_cast<long long>(g.pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            const bool inside = iy >= 0 && iy < static_cast<long long>(g.in_h) &&
                                ix >= 0 && ix < static_cast<long long>(g.in_w);
            dst[oy * ow + ox] =
                inside ? plane[static_cast<std::size_t>(iy) * g.in_w +
                               static_cast<std::size_t>(ix)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

/// Fold one image's column slice back, accumulating — the adjoint of
/// im2col_into with the same stride/offset addressing.
void col2im_from(const float* pc, const Conv2dGeometry& g, std::span<float> image,
                 std::size_t row_stride, std::size_t col_offset) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* plane = image.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* src = pc + row * row_stride + col_offset;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long long iy =
              static_cast<long long>(oy * g.stride + ky) - static_cast<long long>(g.pad);
          if (iy < 0 || iy >= static_cast<long long>(g.in_h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            if (ix < 0 || ix >= static_cast<long long>(g.in_w)) continue;
            plane[static_cast<std::size_t>(iy) * g.in_w + static_cast<std::size_t>(ix)] +=
                src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace

const char* kernel_policy_name(KernelPolicy policy) noexcept {
  switch (policy) {
    case KernelPolicy::kReference: return "reference";
    case KernelPolicy::kBlocked: return "blocked";
  }
  return "?";
}

// --- blocked GEMM family -----------------------------------------------------

void matmul(const Tensor& a, const Tensor& b, Tensor& out, GemmWorkspace& ws) {
  const GemmDims d = check_nn(a, b, out, "matmul: bad shapes");
  gemm::gemm(d.m, d.n, d.k, a.raw(), d.k, 1, b.raw(), d.n, 1, out.raw(), &ws,
             &common::global_pool());
}

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  const GemmDims d = check_nn(a, b, out, "matmul: bad shapes");
  gemm::gemm(d.m, d.n, d.k, a.raw(), d.k, 1, b.raw(), d.n, 1, out.raw(), nullptr,
             &common::global_pool());
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out, GemmWorkspace& ws) {
  const GemmDims d = check_tn(a, b, out, "matmul_tn: bad shapes");
  // op(A) = A^T: element (i, kk) of the product operand is a[kk * m + i].
  gemm::gemm(d.m, d.n, d.k, a.raw(), 1, d.m, b.raw(), d.n, 1, out.raw(), &ws,
             &common::global_pool());
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out) {
  const GemmDims d = check_tn(a, b, out, "matmul_tn: bad shapes");
  gemm::gemm(d.m, d.n, d.k, a.raw(), 1, d.m, b.raw(), d.n, 1, out.raw(), nullptr,
             &common::global_pool());
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out, GemmWorkspace& ws) {
  const GemmDims d = check_nt(a, b, out, "matmul_nt: bad shapes");
  // op(B) = B^T: element (kk, j) of the product operand is b[j * k + kk].
  gemm::gemm(d.m, d.n, d.k, a.raw(), d.k, 1, b.raw(), 1, d.k, out.raw(), &ws,
             &common::global_pool());
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out) {
  const GemmDims d = check_nt(a, b, out, "matmul_nt: bad shapes");
  gemm::gemm(d.m, d.n, d.k, a.raw(), d.k, 1, b.raw(), 1, d.k, out.raw(), nullptr,
             &common::global_pool());
}

// --- naive reference family --------------------------------------------------

void matmul_ref(const Tensor& a, const Tensor& b, Tensor& out) {
  const GemmDims d = check_nn(a, b, out, "matmul_ref: bad shapes");
  const std::size_t m = d.m, k = d.k, n = d.n;

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  out.zero();
  // i-k-j loop order keeps the innermost accesses contiguous in b and out.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_tn_ref(const Tensor& a, const Tensor& b, Tensor& out) {
  const GemmDims d = check_tn(a, b, out, "matmul_tn_ref: bad shapes");
  const std::size_t m = d.m, k = d.k, n = d.n;

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  out.zero();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aki * brow[j];
    }
  }
}

void matmul_nt_ref(const Tensor& a, const Tensor& b, Tensor& out) {
  const GemmDims d = check_nt(a, b, out, "matmul_nt_ref: bad shapes");
  const std::size_t m = d.m, k = d.k, n = d.n;

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* orow = po + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

// --- misc kernels ------------------------------------------------------------

void transpose(const Tensor& in, Tensor& out) {
  require(in.rank() == 2 && out.rank() == 2, "transpose: rank != 2");
  const std::size_t m = in.dim(0), n = in.dim(1);
  require(out.dim(0) == n && out.dim(1) == m, "transpose: bad output shape");
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = in[i * n + j];
  }
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  require(x.rank() == 2 && bias.rank() == 1, "add_row_bias: bad ranks");
  const std::size_t m = x.dim(0), n = x.dim(1);
  require(bias.dim(0) == n, "add_row_bias: bias size mismatch");
  float* px = x.raw();
  const float* pb = bias.raw();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = px + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += pb[j];
  }
}

void sum_rows(const Tensor& grad, Tensor& grad_bias) {
  require(grad.rank() == 2 && grad_bias.rank() == 1, "sum_rows: bad ranks");
  const std::size_t m = grad.dim(0), n = grad.dim(1);
  require(grad_bias.dim(0) == n, "sum_rows: size mismatch");
  grad_bias.zero();
  const float* pg = grad.raw();
  float* pb = grad_bias.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = pg + i * n;
    for (std::size_t j = 0; j < n; ++j) pb[j] += row[j];
  }
}

// --- im2col / col2im ---------------------------------------------------------

void im2col(std::span<const float> image, const Conv2dGeometry& g, Tensor& columns) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  require(image.size() == g.in_channels * g.in_h * g.in_w, "im2col: image size mismatch");
  require(columns.rank() == 2 && columns.dim(0) == g.patch_size() &&
              columns.dim(1) == oh * ow,
          "im2col: bad columns shape");
  im2col_into(image, g, columns.raw(), oh * ow, 0);
}

void col2im(const Tensor& columns, const Conv2dGeometry& g, std::span<float> image) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  require(image.size() == g.in_channels * g.in_h * g.in_w, "col2im: image size mismatch");
  require(columns.rank() == 2 && columns.dim(0) == g.patch_size() &&
              columns.dim(1) == oh * ow,
          "col2im: bad columns shape");
  col2im_from(columns.raw(), g, image, oh * ow, 0);
}

void im2col_batch_sample(std::span<const float> image, const Conv2dGeometry& g,
                         std::size_t batch_n, std::size_t sample, Tensor& columns) {
  const std::size_t spatial = g.out_h() * g.out_w();
  require(image.size() == g.in_channels * g.in_h * g.in_w,
          "im2col_batch_sample: image size mismatch");
  require(sample < batch_n, "im2col_batch_sample: sample out of range");
  require(columns.rank() == 2 && columns.dim(0) == g.patch_size() &&
              columns.dim(1) == batch_n * spatial,
          "im2col_batch_sample: bad columns shape");
  im2col_into(image, g, columns.raw(), batch_n * spatial, sample * spatial);
}

void im2col_batch(const Tensor& batch, const Conv2dGeometry& g, Tensor& columns) {
  const std::size_t features = g.in_channels * g.in_h * g.in_w;
  require(batch.rank() == 2 && batch.dim(1) == features,
          "im2col_batch: bad batch shape");
  const std::size_t n = batch.dim(0);
  for (std::size_t s = 0; s < n; ++s) {
    im2col_batch_sample(batch.data().subspan(s * features, features), g, n, s, columns);
  }
}

void col2im_batch_sample(const Tensor& columns, const Conv2dGeometry& g,
                         std::size_t batch_n, std::size_t sample,
                         std::span<float> image) {
  const std::size_t spatial = g.out_h() * g.out_w();
  require(image.size() == g.in_channels * g.in_h * g.in_w,
          "col2im_batch_sample: image size mismatch");
  require(sample < batch_n, "col2im_batch_sample: sample out of range");
  require(columns.rank() == 2 && columns.dim(0) == g.patch_size() &&
              columns.dim(1) == batch_n * spatial,
          "col2im_batch_sample: bad columns shape");
  col2im_from(columns.raw(), g, image, batch_n * spatial, sample * spatial);
}

}  // namespace fedsched::tensor::ops
