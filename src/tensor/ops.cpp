#include "tensor/ops.hpp"

#include <stdexcept>

namespace fedsched::tensor::ops {

namespace {
void require(bool condition, const char* what) {
  if (!condition) throw std::invalid_argument(what);
}
}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& out) {
  require(a.rank() == 2 && b.rank() == 2 && out.rank() == 2, "matmul: rank != 2");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dims differ");
  require(out.dim(0) == m && out.dim(1) == n, "matmul: bad output shape");

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  out.zero();
  // i-k-j loop order keeps the innermost accesses contiguous in b and out.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out) {
  require(a.rank() == 2 && b.rank() == 2 && out.rank() == 2, "matmul_tn: rank != 2");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_tn: inner dims differ");
  require(out.dim(0) == m && out.dim(1) == n, "matmul_tn: bad output shape");

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  out.zero();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = po + i * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aki * brow[j];
    }
  }
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out) {
  require(a.rank() == 2 && b.rank() == 2 && out.rank() == 2, "matmul_nt: rank != 2");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dims differ");
  require(out.dim(0) == m && out.dim(1) == n, "matmul_nt: bad output shape");

  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* orow = po + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

void transpose(const Tensor& in, Tensor& out) {
  require(in.rank() == 2 && out.rank() == 2, "transpose: rank != 2");
  const std::size_t m = in.dim(0), n = in.dim(1);
  require(out.dim(0) == n && out.dim(1) == m, "transpose: bad output shape");
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[j * m + i] = in[i * n + j];
  }
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  require(x.rank() == 2 && bias.rank() == 1, "add_row_bias: bad ranks");
  const std::size_t m = x.dim(0), n = x.dim(1);
  require(bias.dim(0) == n, "add_row_bias: bias size mismatch");
  float* px = x.raw();
  const float* pb = bias.raw();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = px + i * n;
    for (std::size_t j = 0; j < n; ++j) row[j] += pb[j];
  }
}

void sum_rows(const Tensor& grad, Tensor& grad_bias) {
  require(grad.rank() == 2 && grad_bias.rank() == 1, "sum_rows: bad ranks");
  const std::size_t m = grad.dim(0), n = grad.dim(1);
  require(grad_bias.dim(0) == n, "sum_rows: size mismatch");
  grad_bias.zero();
  const float* pg = grad.raw();
  float* pb = grad_bias.raw();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = pg + i * n;
    for (std::size_t j = 0; j < n; ++j) pb[j] += row[j];
  }
}

void im2col(std::span<const float> image, const Conv2dGeometry& g, Tensor& columns) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  require(image.size() == g.in_channels * g.in_h * g.in_w, "im2col: image size mismatch");
  require(columns.rank() == 2 && columns.dim(0) == g.patch_size() &&
              columns.dim(1) == oh * ow,
          "im2col: bad columns shape");
  float* pc = columns.raw();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* dst = pc + row * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // Signed arithmetic: padding can take source coordinates negative.
          const long long iy =
              static_cast<long long>(oy * g.stride + ky) - static_cast<long long>(g.pad);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            const bool inside = iy >= 0 && iy < static_cast<long long>(g.in_h) &&
                                ix >= 0 && ix < static_cast<long long>(g.in_w);
            dst[oy * ow + ox] =
                inside ? plane[static_cast<std::size_t>(iy) * g.in_w +
                               static_cast<std::size_t>(ix)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& columns, const Conv2dGeometry& g, std::span<float> image) {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  require(image.size() == g.in_channels * g.in_h * g.in_w, "col2im: image size mismatch");
  require(columns.rank() == 2 && columns.dim(0) == g.patch_size() &&
              columns.dim(1) == oh * ow,
          "col2im: bad columns shape");
  const float* pc = columns.raw();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* plane = image.data() + c * g.in_h * g.in_w;
    for (std::size_t ky = 0; ky < g.kernel; ++ky) {
      for (std::size_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* src = pc + row * oh * ow;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const long long iy =
              static_cast<long long>(oy * g.stride + ky) - static_cast<long long>(g.pad);
          if (iy < 0 || iy >= static_cast<long long>(g.in_h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const long long ix = static_cast<long long>(ox * g.stride + kx) -
                                 static_cast<long long>(g.pad);
            if (ix < 0 || ix >= static_cast<long long>(g.in_w)) continue;
            plane[static_cast<std::size_t>(iy) * g.in_w + static_cast<std::size_t>(ix)] +=
                src[oy * ow + ox];
          }
        }
      }
    }
  }
}

}  // namespace fedsched::tensor::ops
