#include "tensor/gemm.hpp"

#include <algorithm>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

namespace fedsched::tensor::gemm {

namespace {

/// Dispatch overhead dominates below this many MACs; panels then run inline.
/// Inline and pooled execution share chunk boundaries, so the bits agree.
constexpr double kMinMacsForPool = 1.5e6;

/// Pack an [mc, kc] block of op(A) into kMr-tall row strips: strip s stores
/// element (s*kMr + i, p) at dst[(s*kc + p) * kMr + i]. Rows past mc are
/// zero-filled so every strip has the full kMr layout (the row-count-
/// specialized microkernels never read the padding).
void pack_a(std::size_t mc, std::size_t kc, const float* a, std::size_t a_rs,
            std::size_t a_cs, float* dst) {
  const std::size_t strips = (mc + kMr - 1) / kMr;
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t rows = std::min(kMr, mc - s * kMr);
    float* strip = dst + s * kc * kMr;
    const float* src = a + s * kMr * a_rs;
    for (std::size_t p = 0; p < kc; ++p) {
      float* cell = strip + p * kMr;
      for (std::size_t i = 0; i < rows; ++i) cell[i] = src[i * a_rs + p * a_cs];
      for (std::size_t i = rows; i < kMr; ++i) cell[i] = 0.0f;
    }
  }
}

/// Pack a [kc, nc] block of op(B) into kNr-wide column strips: strip s stores
/// element (p, s*kNr + j) at dst[(s*kc + p) * kNr + j], zero-padded columns.
/// Only needed when B's columns are strided (the NT layout) or for the
/// ragged last strip — when b_cs == 1 the microkernel reads B directly.
void pack_b(std::size_t kc, std::size_t nc, const float* b, std::size_t b_rs,
            std::size_t b_cs, float* dst) {
  const std::size_t strips = (nc + kNr - 1) / kNr;
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t cols = std::min(kNr, nc - s * kNr);
    float* strip = dst + s * kc * kNr;
    const float* src = b + s * kNr * b_cs;
    for (std::size_t p = 0; p < kc; ++p) {
      float* cell = strip + p * kNr;
      for (std::size_t j = 0; j < cols; ++j) cell[j] = src[p * b_rs + j * b_cs];
      for (std::size_t j = cols; j < kNr; ++j) cell[j] = 0.0f;
    }
  }
}

// --- microkernels ------------------------------------------------------------
//
// A sweep kernel computes `nstrips` consecutive kNr-wide C strips for one
// packed kMr-tall A strip: for each strip sn, c[R][0..kNr) (+)= Ap * B_sn over
// kc, k ascending. B strip sn starts at bp + sn * bstep with row stride
// bstride; that one addressing scheme covers both B forms:
//   - packed strips:  bstep = kc * kNr, bstride = kNr;
//   - B read in place (contiguous columns): bstep = kNr, bstride = b_rs.
// C strip sn starts at c + sn * kNr with row stride ldc (directly into C for
// full-width strips; the ragged tail uses nstrips == 1 into a stack tile).
// `accumulate` folds into existing C (later k blocks): C loads first, then
// products add in k-ascending order. Sweeping strips inside the kernel
// amortizes the indirect call over a whole panel row — the small-k conv
// shapes are call-overhead bound otherwise.
//
// One definition per row count R in [1, kMr] so m-edge strips never burn
// multiplies on padded rows, stamped twice: a portable scalar build and — on
// x86 with GCC/clang — a hand-vectorized AVX build selected at runtime. The
// AVX kernels use separate mul and add intrinsics under a target("avx")
// attribute (no FMA in the ISA, so no contraction is possible), performing
// exactly the same per-element float operations in the same order as the
// scalar build — results are bit-identical across ISAs; wider registers only
// change how many lanes compute at once.

// acc/c never alias the operands; saying so lets the compiler keep the whole
// tile in registers across the k loop.
#if defined(__GNUC__) || defined(__clang__)
#define RESTRICT __restrict__
#else
#define RESTRICT
#endif

using SweepKernelFn = void (*)(std::size_t kc, const float* RESTRICT ap,
                               const float* RESTRICT bp, std::size_t bstride,
                               std::size_t bstep, float* RESTRICT c,
                               std::size_t ldc, std::size_t nstrips,
                               bool accumulate);

#define FEDSCHED_DEFINE_BASE_KERNEL(NAME, R)                               \
  void NAME(std::size_t kc, const float* RESTRICT ap,                      \
            const float* RESTRICT bp, std::size_t bstride,                 \
            std::size_t bstep, float* RESTRICT c, std::size_t ldc,         \
            std::size_t nstrips, bool accumulate) {                        \
    for (std::size_t sn = 0; sn < nstrips; ++sn) {                         \
      const float* RESTRICT bs = bp + sn * bstep;                          \
      float* RESTRICT cs = c + sn * kNr;                                   \
      float acc[(R) * kNr];                                                \
      for (std::size_t i = 0; i < (R); ++i) {                              \
        for (std::size_t j = 0; j < kNr; ++j) {                            \
          acc[i * kNr + j] = accumulate ? cs[i * ldc + j] : 0.0f;          \
        }                                                                  \
      }                                                                    \
      for (std::size_t p = 0; p < kc; ++p) {                               \
        const float* bv = bs + p * bstride;                                \
        for (std::size_t i = 0; i < (R); ++i) {                            \
          const float ai = ap[p * kMr + i];                                \
          float* row = acc + i * kNr;                                      \
          for (std::size_t j = 0; j < kNr; ++j) row[j] += ai * bv[j];      \
        }                                                                  \
      }                                                                    \
      for (std::size_t i = 0; i < (R); ++i) {                              \
        for (std::size_t j = 0; j < kNr; ++j) {                            \
          cs[i * ldc + j] = acc[i * kNr + j];                              \
        }                                                                  \
      }                                                                    \
    }                                                                      \
  }

FEDSCHED_DEFINE_BASE_KERNEL(micro_base_1, 1)
FEDSCHED_DEFINE_BASE_KERNEL(micro_base_2, 2)
FEDSCHED_DEFINE_BASE_KERNEL(micro_base_3, 3)
FEDSCHED_DEFINE_BASE_KERNEL(micro_base_4, 4)
#undef FEDSCHED_DEFINE_BASE_KERNEL
static_assert(kMr == 4, "microkernel table covers rows 1..4");
static_assert(kNr == 16, "microkernels hold two 8-lane vectors per row");

constexpr SweepKernelFn kBaseKernels[kMr] = {micro_base_1, micro_base_2,
                                             micro_base_3, micro_base_4};

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FEDSCHED_HAS_AVX_DISPATCH 1

#define FEDSCHED_DEFINE_AVX_KERNEL(NAME, R)                                \
  __attribute__((target("avx"))) void NAME(                                \
      std::size_t kc, const float* RESTRICT ap, const float* RESTRICT bp,  \
      std::size_t bstride, std::size_t bstep, float* RESTRICT c,           \
      std::size_t ldc, std::size_t nstrips, bool accumulate) {             \
    for (std::size_t sn = 0; sn < nstrips; ++sn) {                         \
      const float* RESTRICT bs = bp + sn * bstep;                          \
      float* RESTRICT cs = c + sn * kNr;                                   \
      __m256 acc[(R)][2];                                                  \
      for (std::size_t i = 0; i < (R); ++i) {                              \
        if (accumulate) {                                                  \
          acc[i][0] = _mm256_loadu_ps(cs + i * ldc);                       \
          acc[i][1] = _mm256_loadu_ps(cs + i * ldc + 8);                   \
        } else {                                                           \
          acc[i][0] = _mm256_setzero_ps();                                 \
          acc[i][1] = _mm256_setzero_ps();                                 \
        }                                                                  \
      }                                                                    \
      for (std::size_t p = 0; p < kc; ++p) {                               \
        const float* RESTRICT bv = bs + p * bstride;                       \
        const __m256 b0 = _mm256_loadu_ps(bv);                             \
        const __m256 b1 = _mm256_loadu_ps(bv + 8);                         \
        for (std::size_t i = 0; i < (R); ++i) {                            \
          const __m256 ai = _mm256_broadcast_ss(ap + p * kMr + i);         \
          acc[i][0] = _mm256_add_ps(acc[i][0], _mm256_mul_ps(ai, b0));     \
          acc[i][1] = _mm256_add_ps(acc[i][1], _mm256_mul_ps(ai, b1));     \
        }                                                                  \
      }                                                                    \
      for (std::size_t i = 0; i < (R); ++i) {                              \
        _mm256_storeu_ps(cs + i * ldc, acc[i][0]);                         \
        _mm256_storeu_ps(cs + i * ldc + 8, acc[i][1]);                     \
      }                                                                    \
    }                                                                      \
  }

FEDSCHED_DEFINE_AVX_KERNEL(micro_avx_1, 1)
FEDSCHED_DEFINE_AVX_KERNEL(micro_avx_2, 2)
FEDSCHED_DEFINE_AVX_KERNEL(micro_avx_3, 3)
FEDSCHED_DEFINE_AVX_KERNEL(micro_avx_4, 4)
#undef FEDSCHED_DEFINE_AVX_KERNEL

constexpr SweepKernelFn kAvxKernels[kMr] = {micro_avx_1, micro_avx_2, micro_avx_3,
                                            micro_avx_4};
#endif

/// Microkernel table for this host, picked once per process.
const SweepKernelFn* active_kernels() {
#ifdef FEDSCHED_HAS_AVX_DISPATCH
  static const SweepKernelFn* const table =
      __builtin_cpu_supports("avx") ? kAvxKernels : kBaseKernels;
  return table;
#else
  return kBaseKernels;
#endif
}

/// One column panel [n0, n1) of the product: packs its own operand slices and
/// writes only its own C columns, so panels are fully independent.
void run_panel(std::size_t m, std::size_t n, std::size_t k, std::size_t n0,
               std::size_t n1, const float* a, std::size_t a_rs, std::size_t a_cs,
               const float* b, std::size_t b_rs, std::size_t b_cs, float* c,
               Workspace::Buffers& buf) {
  const SweepKernelFn* kernels = active_kernels();
  const std::size_t nc = n1 - n0;
  const std::size_t nstrips = (nc + kNr - 1) / kNr;
  const std::size_t kc_max = std::min(k, kKc);
  // Contiguous B columns (NN/TN layouts): read B in place and pack only the
  // ragged last strip. Strided columns (NT): pack the whole panel.
  const bool direct_b = b_cs == 1;
  const std::size_t tail_cols = nc % kNr;
  const std::size_t full_strips = nc / kNr;
  buf.b_pack.resize((direct_b ? 1 : nstrips) * kNr * kc_max);
  buf.a_pack.resize(((std::min(m, kMc) + kMr - 1) / kMr) * kMr * kc_max);

  for (std::size_t pk = 0; pk < k; pk += kKc) {
    const std::size_t kc = std::min(kKc, k - pk);
    const bool first_k_block = pk == 0;
    const float* bblock = b + pk * b_rs + n0 * b_cs;
    if (direct_b) {
      if (tail_cols != 0) {
        pack_b(kc, tail_cols, bblock + full_strips * kNr, b_rs, 1,
               buf.b_pack.data());
      }
    } else {
      pack_b(kc, nc, bblock, b_rs, b_cs, buf.b_pack.data());
    }
    // Full-width strips: one sweep-kernel call covers them all.
    const float* bfull = direct_b ? bblock : buf.b_pack.data();
    const std::size_t bstride = direct_b ? b_rs : kNr;
    const std::size_t bstep = direct_b ? kNr : kc * kNr;
    // Ragged tail strip: always packed (zero-padded to kNr columns).
    const float* btail =
        direct_b ? buf.b_pack.data() : buf.b_pack.data() + full_strips * kc * kNr;

    for (std::size_t pm = 0; pm < m; pm += kMc) {
      const std::size_t mc = std::min(kMc, m - pm);
      const std::size_t mstrips = (mc + kMr - 1) / kMr;
      pack_a(mc, kc, a + pm * a_rs + pk * a_cs, a_rs, a_cs, buf.a_pack.data());

      for (std::size_t sm = 0; sm < mstrips; ++sm) {
        const std::size_t rows = std::min(kMr, mc - sm * kMr);
        const float* ap = buf.a_pack.data() + sm * kc * kMr;
        float* crow = c + (pm + sm * kMr) * n + n0;
        if (full_strips != 0) {
          kernels[rows - 1](kc, ap, bfull, bstride, bstep, crow, n, full_strips,
                            !first_k_block);
        }
        if (tail_cols != 0) {
          // Compute into a stack tile (the kernel always stores kNr-wide
          // rows), then copy/fold only the real columns.
          float tile[kMr * kNr];
          kernels[rows - 1](kc, ap, btail, kNr, 0, tile, kNr, 1, false);
          float* cbase = crow + full_strips * kNr;
          if (first_k_block) {
            for (std::size_t i = 0; i < rows; ++i) {
              for (std::size_t j = 0; j < tail_cols; ++j) {
                cbase[i * n + j] = tile[i * kNr + j];
              }
            }
          } else {
            for (std::size_t i = 0; i < rows; ++i) {
              for (std::size_t j = 0; j < tail_cols; ++j) {
                cbase[i * n + j] += tile[i * kNr + j];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::size_t panel_count(std::size_t n) noexcept {
  return n == 0 ? 0 : common::ThreadPool::grain_chunks(n, kNc);
}

void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t a_rs, std::size_t a_cs, const float* b, std::size_t b_rs,
          std::size_t b_cs, float* c, Workspace* ws, common::ThreadPool* pool) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    std::fill(c, c + m * n, 0.0f);
    return;
  }
  const std::size_t panels = panel_count(n);
  Workspace local;
  Workspace& w = ws ? *ws : local;
  w.ensure(panels);

  const auto panel_fn = [&](std::size_t idx, std::size_t lo, std::size_t hi) {
    run_panel(m, n, k, lo, hi, a, a_rs, a_cs, b, b_rs, b_cs, c, w.slot(idx));
  };
  const double macs = static_cast<double>(m) * static_cast<double>(n) *
                      static_cast<double>(k);
  if (panels > 1 && pool != nullptr && pool->size() > 1 && macs >= kMinMacsForPool) {
    pool->parallel_for_chunks(0, n, panels, panel_fn);
  } else {
    for (std::size_t idx = 0; idx < panels; ++idx) {
      const auto [lo, hi] = common::ThreadPool::chunk_bounds(0, n, panels, idx);
      panel_fn(idx, lo, hi);
    }
  }
}

}  // namespace fedsched::tensor::gemm
