#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fedsched::tensor {

std::size_t shape_numel(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: value count " + std::to_string(data_.size()) +
                                " does not match shape " + shape_to_string(shape_));
  }
}

Tensor Tensor::randn(Shape shape, common::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) x = static_cast<float>(rng.gaussian(0.0, stddev));
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size()) throw std::out_of_range("Tensor::dim: axis out of range");
  return shape_[axis];
}

std::size_t Tensor::flat_index(std::initializer_list<std::size_t> idx) const {
  if (idx.size() != shape_.size()) {
    throw std::invalid_argument("Tensor::at: rank mismatch");
  }
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (std::size_t i : idx) {
    if (i >= shape_[axis]) throw std::out_of_range("Tensor::at: index out of range");
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<std::size_t> idx) { return data_[flat_index(idx)]; }
float Tensor::at(std::initializer_list<std::size_t> idx) const {
  return data_[flat_index(idx)];
}

void Tensor::reshape(Shape shape) {
  if (shape_numel(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " +
                                shape_to_string(shape));
  }
  shape_ = std::move(shape);
}

void Tensor::fill(float value) noexcept {
  for (float& x : data_) x = value;
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Tensor +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  if (!same_shape(rhs)) throw std::invalid_argument("Tensor -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& rhs, float scalar) {
  if (!same_shape(rhs)) throw std::invalid_argument("Tensor::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scalar * rhs.data_[i];
}

float Tensor::sum() const noexcept {
  double total = 0.0;
  for (float x : data_) total += x;
  return static_cast<float>(total);
}

float Tensor::abs_max() const noexcept {
  float best = 0.0f;
  for (float x : data_) best = std::max(best, std::abs(x));
  return best;
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}
Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}
Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

}  // namespace fedsched::tensor
