#pragma once
// Dense kernels used by the nn layers: GEMM, im2col/col2im, reductions.
//
// All kernels take explicit output tensors (caller allocates) so the training
// loop can reuse buffers across batches — important on the 512 MB heap the
// paper's mobile app runs with, and it keeps per-batch cost flat, which the
// performance profiler relies on.
//
// Two GEMM families live here:
//   - matmul / matmul_tn / matmul_nt: the cache-blocked, register-tiled
//     engine (tensor/gemm.hpp). Bit-identical run-to-run at any thread-pool
//     width (fixed column chunking, no cross-chunk reductions).
//   - matmul_ref / matmul_tn_ref / matmul_nt_ref: the naive triple-loop
//     kernels, kept as the differential-testing oracle and as the
//     KernelPolicy::kReference path of the nn layers.
// Blocked and reference kernels agree within a few ULPs (bitwise whenever
// k <= gemm::kKc, which covers every layer in this repo); the bound is pinned
// by tests/tensor/test_gemm_differential.cpp.

#include <cstddef>
#include <span>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace fedsched::tensor::ops {

/// Selects the kernel family a layer runs on: kBlocked is the production
/// path; kReference keeps the naive loops for differential testing and
/// debugging. Plumbed through nn::ModelSpec / nn::Model construction.
enum class KernelPolicy { kReference, kBlocked };

[[nodiscard]] const char* kernel_policy_name(KernelPolicy policy) noexcept;

/// Reusable GEMM packing buffers (see tensor/gemm.hpp). Layers own one per
/// instance and pass it to every call, making steady-state training
/// allocation-free inside the GEMMs.
using GemmWorkspace = gemm::Workspace;

/// out[m,n] = a[m,k] * b[k,n]. Shapes are validated. Blocked engine; the
/// workspace overload reuses caller-owned packing buffers.
void matmul(const Tensor& a, const Tensor& b, Tensor& out);
void matmul(const Tensor& a, const Tensor& b, Tensor& out, GemmWorkspace& ws);

/// out[m,n] = a[k,m]^T * b[k,n].
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out, GemmWorkspace& ws);

/// out[m,n] = a[m,k] * b[n,k]^T.
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out, GemmWorkspace& ws);

/// Naive reference kernels (identical contracts to the blocked variants).
void matmul_ref(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_tn_ref(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_nt_ref(const Tensor& a, const Tensor& b, Tensor& out);

/// out[n,m] = in[m,n]^T.
void transpose(const Tensor& in, Tensor& out);

/// Add bias[j] to every row of x[i,j] in place.
void add_row_bias(Tensor& x, const Tensor& bias);

/// grad_bias[j] = sum_i grad[i,j].
void sum_rows(const Tensor& grad, Tensor& grad_bias);

struct Conv2dGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;   // square kernels only
  std::size_t stride = 1;
  std::size_t pad = 0;

  [[nodiscard]] std::size_t out_h() const noexcept {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const noexcept {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the im2col matrix: one per (channel, ky, kx) triple.
  [[nodiscard]] std::size_t patch_size() const noexcept {
    return in_channels * kernel * kernel;
  }
};

/// Unfold one image (C,H,W flattened) into a [patch_size, out_h*out_w] matrix.
void im2col(std::span<const float> image, const Conv2dGeometry& geometry, Tensor& columns);

/// Fold a [patch_size, out_h*out_w] matrix back, accumulating into the image.
void col2im(const Tensor& columns, const Conv2dGeometry& geometry,
            std::span<float> image);

// Batch-level unfold: the whole minibatch becomes ONE
// [patch_size, batch * out_h * out_w] matrix (sample s owns the contiguous
// column range [s * out_h * out_w, (s+1) * out_h * out_w)), so a Conv2d pass
// is a single large GEMM instead of `batch` small ones. The per-sample
// entry points write disjoint column ranges, making them safe to dispatch
// over fixed sample chunks on a thread pool.

/// Unfold sample `sample` of batch[batch_n, C*H*W] into its column slice of
/// columns[patch_size, batch_n * out_h*out_w].
void im2col_batch_sample(std::span<const float> image, const Conv2dGeometry& geometry,
                         std::size_t batch_n, std::size_t sample, Tensor& columns);

/// Unfold every sample (serial convenience wrapper over im2col_batch_sample).
void im2col_batch(const Tensor& batch, const Conv2dGeometry& geometry, Tensor& columns);

/// Fold sample `sample`'s column slice of columns[patch_size, batch_n * oh*ow]
/// back, accumulating into that sample's image (C*H*W flattened).
void col2im_batch_sample(const Tensor& columns, const Conv2dGeometry& geometry,
                         std::size_t batch_n, std::size_t sample,
                         std::span<float> image);

}  // namespace fedsched::tensor::ops
