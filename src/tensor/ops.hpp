#pragma once
// Dense kernels used by the nn layers: GEMM, im2col/col2im, reductions.
//
// All kernels take explicit output tensors (caller allocates) so the training
// loop can reuse buffers across batches — important on the 512 MB heap the
// paper's mobile app runs with, and it keeps per-batch cost flat, which the
// performance profiler relies on.

#include <cstddef>

#include "tensor/tensor.hpp"

namespace fedsched::tensor::ops {

/// out[m,n] = a[m,k] * b[k,n]. Shapes are validated.
void matmul(const Tensor& a, const Tensor& b, Tensor& out);

/// out[m,n] = a[k,m]^T * b[k,n].
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& out);

/// out[m,n] = a[m,k] * b[n,k]^T.
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& out);

/// out[n,m] = in[m,n]^T.
void transpose(const Tensor& in, Tensor& out);

/// Add bias[j] to every row of x[i,j] in place.
void add_row_bias(Tensor& x, const Tensor& bias);

/// grad_bias[j] = sum_i grad[i,j].
void sum_rows(const Tensor& grad, Tensor& grad_bias);

struct Conv2dGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel = 0;   // square kernels only
  std::size_t stride = 1;
  std::size_t pad = 0;

  [[nodiscard]] std::size_t out_h() const noexcept {
    return (in_h + 2 * pad - kernel) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const noexcept {
    return (in_w + 2 * pad - kernel) / stride + 1;
  }
  /// Rows of the im2col matrix: one per (channel, ky, kx) triple.
  [[nodiscard]] std::size_t patch_size() const noexcept {
    return in_channels * kernel * kernel;
  }
};

/// Unfold one image (C,H,W flattened) into a [patch_size, out_h*out_w] matrix.
void im2col(std::span<const float> image, const Conv2dGeometry& geometry, Tensor& columns);

/// Fold a [patch_size, out_h*out_w] matrix back, accumulating into the image.
void col2im(const Tensor& columns, const Conv2dGeometry& geometry,
            std::span<float> image);

}  // namespace fedsched::tensor::ops
