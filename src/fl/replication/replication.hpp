#pragma once
// Speculative shard replication — hedging against stragglers and crashes.
//
// The self-healing loop (fl/health) reacts *after* drift is observed: a
// client must fault or drift before the replanner moves its shards. This
// layer acts *before* the loss lands: each round the ReplicationPlanner
// scores every client's risk of straggling or dying from live HealthTracker
// state (fault streaks, cumulative faults, speed-drift EWMA, battery
// projection — the SEAS idea of computing per-workunit replica counts from
// device reliability) and assigns the shares of at-risk clients redundantly
// to healthy fast hosts, capped by a per-round replica budget.
//
// First-finisher semantics: the server needs exactly one copy of each share.
// A replicated share closes at the *earliest* arrived copy — primary or
// replica — so a straggling primary no longer gates the round, and a crashed
// primary whose replica survives is rescued instead of dropped. Ties are
// broken by client id, so resolution is a pure function of the simulated
// timeline and bit-identical at any `parallelism` width.
//
// Cost accounting: a replica host trains the owner's share *after* its own
// (one extra compute block on its device clock, plus one extra upload), its
// battery pays for the extra work, and its own fault verdict applies to the
// replica too — a replica's host can itself crash, stall, or die. Losing
// replicas are pure waste (the fl.replica_waste metric); the trade is extra
// fleet compute for tail latency, which is exactly the production knob.
//
// Aggregation stays survivor-weighted and counts every share once, no matter
// how many copies completed: primary and replica train the same share from
// the same pulled parameters with the same (round, owner)-keyed RNG and the
// owner's optimizer state, so whichever copy wins contributes bit-identical
// parameters. A disabled policy (kOff) leaves runs — results, trace bytes,
// metrics — bit-identical to a build without the replication layer.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fl/faults.hpp"
#include "fl/health/health.hpp"
#include "sched/types.hpp"

namespace fedsched::fl::replication {

enum class ReplicationPolicy : std::uint8_t {
  kOff = 0,  // no replicas; bit-identical to pre-replication builds
  kRisk,     // SEAS-style: replica counts scale with per-client risk scores
};

[[nodiscard]] const char* replication_policy_name(ReplicationPolicy policy) noexcept;

struct ReplicationConfig {
  ReplicationPolicy policy = ReplicationPolicy::kOff;
  /// Max replicas assigned per round across the whole fleet.
  std::size_t budget_per_round = 4;
  /// Shares of clients at/above this risk score are hedged.
  double risk_threshold = 0.25;
  /// Max copies of one share beyond the primary.
  std::size_t max_replicas_per_share = 2;
  /// Baseline offline profiles used to rank hosts by predicted replica
  /// finish time (the same machinery the replanner stretches). Optional:
  /// when empty, hosts rank by observed drift multiplier alone.
  std::vector<sched::UserProfile> users;

  [[nodiscard]] bool enabled() const noexcept {
    return policy != ReplicationPolicy::kOff;
  }
  /// Throws std::invalid_argument on an inconsistent config (only when
  /// enabled(); an off config is always valid).
  void validate(std::size_t n_clients) const;
};

/// One speculative copy: `host` trains `owner`'s share this round.
struct ReplicaAssignment {
  std::size_t owner = 0;
  std::size_t host = 0;
  /// Planner's predicted arrival of the copy (0 when no profiles given).
  double predicted_finish_s = 0.0;
};

/// The round's hedge plan. Owners appear in descending risk order (ties by
/// id); a host carries at most one replica per round.
struct RoundPlan {
  std::vector<ReplicaAssignment> assignments;
  /// Per-client risk score the plan was built from.
  std::vector<double> risk;
  /// Clients at/above the risk threshold (before budget/host limits).
  std::size_t flagged = 0;

  [[nodiscard]] bool empty() const noexcept { return assignments.empty(); }
};

class ReplicationPlanner {
 public:
  /// Throws std::invalid_argument when the enabled config is inconsistent
  /// with `n_clients`.
  ReplicationPlanner(ReplicationConfig config, std::size_t n_clients);

  [[nodiscard]] const ReplicationConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }

  /// SEAS-style risk of losing client u's share this round, in [0, 1]:
  /// fault streaks (about to be benched), cumulative faults (creeping toward
  /// the blacklist), upward speed drift (straggling), and a projected
  /// battery death inside the health horizon. Pure function of the tracker.
  [[nodiscard]] double risk_score(const health::HealthTracker& tracker,
                                  std::size_t u) const;

  /// Build the round's plan. `share_sizes[u]` is the sample count client u
  /// holds (owners and hosts both need a non-empty share); `local_epochs`
  /// scales the predicted replica compute. Owners are taken in descending
  /// (risk, id asc) order while the budget lasts; hosts are eligible,
  /// unflagged clients in ascending predicted-cost order, one replica each.
  [[nodiscard]] RoundPlan plan(const health::HealthTracker& tracker,
                               const std::vector<std::size_t>& share_sizes,
                               std::size_t local_epochs) const;

 private:
  ReplicationConfig config_;
  std::size_t n_clients_;
};

/// Simulated outcome of one replica, produced by the runner (which owns the
/// device clocks, batteries and the injector).
struct ReplicaOutcome {
  std::size_t owner = 0;
  std::size_t host = 0;
  bool completed = false;
  /// Simulated arrival of the copy (host's own elapsed + replica compute +
  /// replica upload). Meaningful even when lost to a deadline.
  double finish_s = 0.0;
  /// kNone when completed; otherwise why the copy was lost (the host's own
  /// fault, a mid-replica battery death, or a deadline miss).
  FaultKind kind = FaultKind::kNone;
};

/// First-finisher verdict for one replicated share.
struct ShareResolution {
  std::size_t owner = 0;
  /// At least one copy (primary or replica) completed.
  bool arrived = false;
  /// The primary failed but a replica saved the share.
  bool rescued = false;
  /// Client id of the earliest arrived copy (ties broken by id; owner wins
  /// a tie with any replica only through its lower id, never specially).
  std::size_t winner = 0;
  /// Arrival of the winning copy — what gates the round for this share.
  double finish_s = 0.0;
  std::size_t replicas = 0;
  std::size_t replicas_completed = 0;
};

/// Deterministic first-finisher resolution: min over arrived copies by
/// (finish_s, client id). Pure function of its arguments.
[[nodiscard]] ShareResolution resolve_first_finisher(
    std::size_t owner, bool primary_completed, double primary_elapsed_s,
    std::span<const ReplicaOutcome> replicas);

}  // namespace fedsched::fl::replication
