#include "fl/replication/replication.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace fedsched::fl::replication {

const char* replication_policy_name(ReplicationPolicy policy) noexcept {
  switch (policy) {
    case ReplicationPolicy::kOff:
      return "off";
    case ReplicationPolicy::kRisk:
      return "risk";
  }
  return "unknown";
}

void ReplicationConfig::validate(std::size_t n_clients) const {
  if (!enabled()) return;
  if (budget_per_round == 0) {
    throw std::invalid_argument("replication: budget_per_round must be >= 1");
  }
  if (!(risk_threshold > 0.0) || risk_threshold > 1.0) {
    throw std::invalid_argument("replication: risk_threshold must be in (0, 1]");
  }
  if (max_replicas_per_share == 0) {
    throw std::invalid_argument("replication: max_replicas_per_share must be >= 1");
  }
  if (!users.empty() && users.size() != n_clients) {
    throw std::invalid_argument("replication: users profile count (" +
                                std::to_string(users.size()) +
                                ") does not match client count (" +
                                std::to_string(n_clients) + ")");
  }
  if (n_clients < 2) {
    throw std::invalid_argument("replication: needs at least 2 clients");
  }
}

ReplicationPlanner::ReplicationPlanner(ReplicationConfig config,
                                       std::size_t n_clients)
    : config_(std::move(config)), n_clients_(n_clients) {
  config_.validate(n_clients_);
}

namespace {
[[nodiscard]] double clamp01(double x) {
  return std::min(1.0, std::max(0.0, x));
}
}  // namespace

double ReplicationPlanner::risk_score(const health::HealthTracker& tracker,
                                      std::size_t u) const {
  const health::ClientHealth& c = tracker.client(u);
  // Permanently-out clients hold no shards; nothing left to hedge.
  if (c.status == health::ClientStatus::kBlacklisted ||
      c.status == health::ClientStatus::kDead) {
    return 0.0;
  }
  const health::HealthConfig& hc = tracker.config();

  // How close the client is to being benched (consecutive faults)...
  const double streak =
      hc.probation_streak > 0
          ? clamp01(static_cast<double>(c.fault_streak) /
                    static_cast<double>(hc.probation_streak))
          : 0.0;
  // ...to being blacklisted (cumulative faults)...
  const double cumulative =
      hc.blacklist_faults > 0
          ? clamp01(static_cast<double>(c.total_faults) /
                    static_cast<double>(hc.blacklist_faults))
          : 0.0;
  // ...and how far it has drifted slow (1.0 = running at half speed).
  const double drift = clamp01(std::max(0.0, c.speed_ewma - 1.0));

  double risk = 0.45 * streak + 0.25 * cumulative + 0.30 * drift;

  // A battery projected to cross the death floor within the health horizon
  // dominates everything else: the share is about to vanish mid-round.
  if (c.soc >= 0.0 &&
      c.soc - hc.battery_horizon_rounds * c.soc_drop_ewma <= hc.battery_floor_soc) {
    risk = std::max(risk, 0.9);
  }
  return clamp01(risk);
}

RoundPlan ReplicationPlanner::plan(const health::HealthTracker& tracker,
                                   const std::vector<std::size_t>& share_sizes,
                                   std::size_t local_epochs) const {
  RoundPlan out;
  if (!enabled()) return out;
  if (share_sizes.size() != n_clients_) {
    throw std::invalid_argument("replication: share_sizes size mismatch");
  }

  out.risk.resize(n_clients_, 0.0);
  for (std::size_t u = 0; u < n_clients_; ++u) {
    out.risk[u] = risk_score(tracker, u);
  }

  // Owners worth hedging: participants at/above the risk threshold, highest
  // risk first (ties by id, so the order is a pure function of the scores).
  std::vector<std::size_t> owners;
  for (std::size_t u = 0; u < n_clients_; ++u) {
    if (share_sizes[u] > 0 && out.risk[u] >= config_.risk_threshold) {
      owners.push_back(u);
    }
  }
  out.flagged = owners.size();
  if (owners.empty()) return out;
  std::stable_sort(owners.begin(), owners.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (out.risk[a] != out.risk[b]) return out.risk[a] > out.risk[b];
                     return a < b;
                   });

  // Host candidates: eligible, unflagged participants, cheapest predicted
  // replica arrival first. With offline profiles the prediction prices the
  // host's whole hedged round (own share + the owner's share, stretched by
  // the observed drift multiplier); without them the sample counts alone
  // rank hosts. Either way ties break by id.
  struct Host {
    std::size_t id;
    double cost;
  };
  const std::size_t epochs = std::max<std::size_t>(1, local_epochs);
  auto predicted_finish = [&](std::size_t v, std::size_t owner) {
    const double mult = tracker.cost_multiplier(v);
    const auto samples = share_sizes[v] + share_sizes[owner];
    if (v < config_.users.size() && config_.users[v].time_model) {
      const sched::UserProfile& p = config_.users[v];
      return mult * (static_cast<double>(epochs) *
                         p.time_model->epoch_seconds(samples) +
                     p.comm_seconds);
    }
    return mult * static_cast<double>(samples);
  };
  std::vector<Host> hosts;
  for (std::size_t v = 0; v < n_clients_; ++v) {
    if (share_sizes[v] == 0 || !tracker.eligible(v)) continue;
    if (out.risk[v] >= config_.risk_threshold) continue;
    hosts.push_back({v, 0.0});
  }

  // Grant replicas round-robin over the ranked owners — every flagged owner
  // gets its first copy before anyone gets a second — while the per-round
  // budget and the one-replica-per-host rule hold.
  std::vector<std::size_t> copies(n_clients_, 0);
  std::vector<char> host_used(n_clients_, 0);
  std::size_t budget = config_.budget_per_round;
  for (std::size_t pass = 0; pass < config_.max_replicas_per_share && budget > 0;
       ++pass) {
    for (std::size_t u : owners) {
      if (budget == 0) break;
      if (copies[u] != pass) continue;  // missed a copy earlier: hosts ran out
      // Cheapest unused host for this owner.
      const Host* best = nullptr;
      double best_cost = 0.0;
      for (Host& h : hosts) {
        if (host_used[h.id]) continue;
        const double cost = predicted_finish(h.id, u);
        if (best == nullptr || cost < best_cost ||
            (cost == best_cost && h.id < best->id)) {
          best = &h;
          best_cost = cost;
        }
      }
      if (best == nullptr) break;  // no hosts left at all
      host_used[best->id] = 1;
      ++copies[u];
      --budget;
      out.assignments.push_back({u, best->id, best_cost});
    }
  }
  return out;
}

ShareResolution resolve_first_finisher(std::size_t owner, bool primary_completed,
                                       double primary_elapsed_s,
                                       std::span<const ReplicaOutcome> replicas) {
  ShareResolution r;
  r.owner = owner;
  r.replicas = replicas.size();
  if (primary_completed) {
    r.arrived = true;
    r.winner = owner;
    r.finish_s = primary_elapsed_s;
  }
  for (const ReplicaOutcome& rep : replicas) {
    if (!rep.completed) continue;
    ++r.replicas_completed;
    if (!r.arrived || rep.finish_s < r.finish_s ||
        (rep.finish_s == r.finish_s && rep.host < r.winner)) {
      r.winner = rep.host;
      r.finish_s = rep.finish_s;
      r.arrived = true;
    }
  }
  r.rescued = r.arrived && !primary_completed;
  return r;
}

}  // namespace fedsched::fl::replication
