#pragma once
// Aggregation reductions shared by the FL runners and the fleet simulator.
//
// Two tiers with different arithmetic contracts:
//
//  - survivor_weighted_average: FedAvg's historical float reduction over
//    trained clients, extracted verbatim from the runner. Parallel over
//    *parameter blocks*; each index sums clients in client order, so any
//    executor width yields the same floats as the serial path.
//  - flat_weighted_sum / tree_weighted_sum: the fleet tier's double
//    reductions over generated client updates. The tree variant reduces
//    clients -> shard-group partials -> global with a group partition that is
//    a pure function of (member count, group size) — never of thread count —
//    and combines partials serially in group order, so any --parallel width
//    is bit-identical.
//
// Tree == flat bitwise: float addition is not associative, so the two
// orders only agree in general when every partial sum is exact. The fleet
// tier guarantees that by construction — synthetic updates live on a 2^-16
// fixed-point grid with magnitude <= 1 and integer shard-count weights, so
// all sums stay well inside double's 53-bit mantissa (2^26 max total weight
// * 2^16 grid = 42 bits) and every reduction order produces the same exact
// value. tests/fleet/test_fleet_sim.cpp enforces the equality on seeded
// fault mixes; docs/API.md states the grid precondition.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "fl/parallel.hpp"

namespace fedsched::fl {

/// FedAvg: aggregate[i] = sum over trained clients of
/// (share / survivor_samples) * locals[u][i], weights formed in float,
/// clients summed in client order at every index. Preconditions:
/// survivor_samples > 0 and locals[u].size() == aggregate.size() for every
/// trained u.
void survivor_weighted_average(std::vector<float>& aggregate,
                               const std::vector<std::vector<float>>& locals,
                               const std::vector<char>& trained,
                               const std::vector<std::size_t>& share_sizes,
                               std::size_t survivor_samples,
                               ClientExecutor& executor);

/// Fills `out` (size dim) with the update of the given client.
using UpdateFn = std::function<void(std::uint32_t client, std::span<double> out)>;

/// Left-to-right weighted sum over members (ascending client ids):
/// result[i] = sum_m weights[m] * update_m[i]. The exactness oracle for the
/// tree reduction.
[[nodiscard]] std::vector<double> flat_weighted_sum(
    std::span<const std::uint32_t> members, std::span<const std::uint32_t> weights,
    std::size_t dim, const UpdateFn& update_into);

/// Two-level reduction: members are split into contiguous groups of at most
/// group_size, each group accumulates its weighted partial independently
/// (optionally across `pool`), and partials combine serially in group order.
/// The partition depends only on (members.size(), group_size), so results
/// are identical at any pool width; on fixed-point-grid updates with integer
/// weights the result is additionally bit-identical to flat_weighted_sum.
[[nodiscard]] std::vector<double> tree_weighted_sum(
    std::span<const std::uint32_t> members, std::span<const std::uint32_t> weights,
    std::size_t dim, const UpdateFn& update_into, std::size_t group_size,
    common::ThreadPool* pool = nullptr);

}  // namespace fedsched::fl
