#include "fl/health/replanner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "profile/time_model.hpp"
#include "sched/fed_lbap.hpp"

namespace fedsched::fl::health {

const char* policy_name(ReschedulePolicy policy) noexcept {
  switch (policy) {
    case ReschedulePolicy::kOff: return "off";
    case ReschedulePolicy::kLbap: return "lbap";
    case ReschedulePolicy::kMinAvg: return "minavg";
  }
  return "unknown";
}

void ReschedulePlan::validate(std::size_t n_clients) const {
  if (!enabled()) return;
  health.validate();
  if (users.size() != n_clients) {
    throw std::invalid_argument("ReschedulePlan: users size != client count");
  }
  if (total_shards == 0 || shard_size == 0) {
    throw std::invalid_argument("ReschedulePlan: total_shards and shard_size must be > 0");
  }
  if (initial_shards.size() != n_clients) {
    throw std::invalid_argument("ReschedulePlan: initial_shards size != client count");
  }
  for (const auto& user : users) {
    if (!user.time_model) {
      throw std::invalid_argument("ReschedulePlan: user missing time model");
    }
    if (policy == ReschedulePolicy::kMinAvg && user.classes.empty()) {
      throw std::invalid_argument("ReschedulePlan: minavg users need class sets");
    }
  }
}

Replanner::Replanner(ReschedulePlan plan, std::size_t n_clients)
    : plan_(std::move(plan)) {
  plan_.validate(n_clients);
  current_shards_ = plan_.enabled()
                        ? plan_.initial_shards
                        : std::vector<std::size_t>(n_clients, 0);
}

void Replanner::restore_shards(std::vector<std::size_t> shards) {
  if (shards.size() != current_shards_.size()) {
    throw std::invalid_argument("Replanner: restored shard count mismatch");
  }
  current_shards_ = std::move(shards);
}

ReplanOutcome Replanner::replan(const HealthTracker& tracker,
                                HealthTracker& accounting) {
  ReplanOutcome outcome;
  if (!plan_.enabled()) return outcome;

  // Health-adjusted profiles: baseline models stretched by the observed
  // drift, ineligible clients closed via zero capacity.
  std::vector<sched::UserProfile> adjusted = plan_.users;
  std::size_t hostable = 0;
  for (std::size_t u = 0; u < adjusted.size(); ++u) {
    const double mult = tracker.cost_multiplier(u);
    adjusted[u].time_model =
        std::make_shared<profile::ScaledTimeModel>(plan_.users[u].time_model, mult);
    adjusted[u].comm_seconds = plan_.users[u].comm_seconds * mult;
    if (tracker.eligible(u)) {
      outcome.eligible_clients += 1;
      hostable += std::min(adjusted[u].capacity_shards, plan_.total_shards);
    } else {
      adjusted[u].capacity_shards = 0;
    }
  }
  // Not enough surviving capacity: keep the current plan rather than throw —
  // the run degrades to whatever clients remain instead of aborting.
  if (outcome.eligible_clients == 0 || hostable < plan_.total_shards) {
    return outcome;
  }

  if (plan_.policy == ReschedulePolicy::kLbap) {
    const sched::LbapResult result =
        sched::fed_lbap(adjusted, plan_.total_shards, plan_.shard_size);
    outcome.assignment = result.assignment;
    outcome.predicted_makespan = result.makespan_seconds;
  } else {
    const sched::MinAvgResult result = sched::fed_minavg(
        adjusted, plan_.total_shards, plan_.shard_size, plan_.minavg);
    outcome.assignment = result.assignment;
    outcome.predicted_makespan = result.makespan_seconds;
  }

  const std::vector<std::size_t>& next = outcome.assignment.shards_per_user;
  std::size_t l1 = 0;
  for (std::size_t u = 0; u < next.size(); ++u) {
    const std::size_t prev = current_shards_[u];
    l1 += next[u] > prev ? next[u] - prev : prev - next[u];
    if (next[u] < prev) accounting.add_reassigned(u, prev - next[u]);
  }
  outcome.moved_shards = l1 / 2;
  if (outcome.moved_shards == 0) return outcome;  // nothing actually changed

  current_shards_ = next;
  outcome.replanned = true;
  return outcome;
}

data::Partition Replanner::materialize(const data::Dataset& train,
                                       std::size_t total_samples,
                                       common::Rng& rng) const {
  std::vector<double> weights(current_shards_.begin(), current_shards_.end());
  const std::vector<std::size_t> sizes =
      data::proportional_sizes(total_samples, weights);
  if (plan_.policy == ReschedulePolicy::kMinAvg) {
    std::vector<std::vector<std::uint16_t>> class_sets;
    class_sets.reserve(plan_.users.size());
    for (const auto& user : plan_.users) class_sets.push_back(user.classes);
    return data::partition_by_class_sets(train, class_sets, sizes, rng);
  }
  return data::partition_with_sizes_iid(train, sizes, rng);
}

}  // namespace fedsched::fl::health
