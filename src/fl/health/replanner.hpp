#pragma once
// Online replanner — the actuation half of the self-healing loop.
//
// When HealthTracker reports that the fleet has drifted from the current plan
// (dead/benched clients, speed drift past the threshold), the replanner
// rebuilds the scheduler's cost inputs from live health state and re-runs the
// paper's algorithms mid-run:
//
//   * every client's profiled time model is stretched by its observed
//     cost_multiplier (profile::ScaledTimeModel), comm time included;
//   * ineligible clients (probation / blacklisted / dead / battery-risky)
//     get capacity_shards = 0 so the scheduler routes shards around them;
//   * Fed-LBAP re-solves the IID makespan problem, Fed-MinAvg the non-IID
//     min-average-cost problem — the same planners the static schedule used.
//
// The runner then re-materializes the data partition from the new shard
// counts with a repartition Rng that is a pure function of (seed, round), so
// a replan is reproducible from the round number alone — nothing extra to
// checkpoint beyond the shard counts themselves.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/partition.hpp"
#include "fl/health/health.hpp"
#include "sched/fed_minavg.hpp"
#include "sched/types.hpp"

namespace fedsched::fl::health {

enum class ReschedulePolicy : std::uint8_t {
  kOff = 0,   // static plan for the whole run (the pre-PR behaviour)
  kLbap,      // re-run Fed-LBAP on health-adjusted profiles (IID data)
  kMinAvg,    // re-run Fed-MinAvg on health-adjusted profiles (non-IID data)
};

[[nodiscard]] const char* policy_name(ReschedulePolicy policy) noexcept;

/// Everything the replanner needs to rebuild a schedule mid-run. `users` are
/// the *baseline* offline profiles; health multipliers are layered on top at
/// each replan, never compounded into the stored profiles.
struct ReschedulePlan {
  ReschedulePolicy policy = ReschedulePolicy::kOff;
  HealthConfig health;
  std::vector<sched::UserProfile> users;
  std::size_t total_shards = 0;
  std::size_t shard_size = 100;
  /// Non-IID opening-cost parameters (kMinAvg only).
  sched::MinAvgConfig minavg;
  /// Shard counts of the initial static plan (the drift / moved-shards
  /// baseline). Must match `users` in length when the policy is on.
  std::vector<std::size_t> initial_shards;

  [[nodiscard]] bool enabled() const noexcept {
    return policy != ReschedulePolicy::kOff;
  }
  /// Throws std::invalid_argument on an inconsistent plan (only when
  /// enabled(); an off plan is always valid).
  void validate(std::size_t n_clients) const;
};

struct ReplanOutcome {
  /// False when no new plan was produced: surviving capacity cannot host
  /// total_shards, or the solver result matched the current allocation.
  bool replanned = false;
  sched::Assignment assignment;
  /// Solver's predicted makespan under the health-adjusted costs, seconds.
  double predicted_makespan = 0.0;
  /// Shards that changed owner vs the previous allocation (L1 distance / 2).
  std::size_t moved_shards = 0;
  /// Clients eligible for shards when the plan was built.
  std::size_t eligible_clients = 0;
};

class Replanner {
 public:
  /// Throws std::invalid_argument when the enabled plan is inconsistent with
  /// `n_clients`.
  Replanner(ReschedulePlan plan, std::size_t n_clients);

  [[nodiscard]] const ReschedulePlan& plan() const noexcept { return plan_; }
  [[nodiscard]] bool enabled() const noexcept { return plan_.enabled(); }

  /// The shard allocation currently in force (initial_shards until the first
  /// replan). Checkpoints serialize this; restore() re-establishes it.
  [[nodiscard]] const std::vector<std::size_t>& current_shards() const noexcept {
    return current_shards_;
  }
  void restore_shards(std::vector<std::size_t> shards);

  /// Rebuild the schedule from live health state. On success the new
  /// allocation becomes current, decreases are credited to the tracker's
  /// reassigned-shards counters, and the caller is expected to call
  /// tracker.note_replan(round) after acting on the outcome.
  [[nodiscard]] ReplanOutcome replan(const HealthTracker& tracker,
                                     HealthTracker& accounting);

  /// Materialize the current allocation into a data partition holding
  /// `total_samples` samples (the previous partition's total, which may not
  /// equal total_shards * shard_size — replans redistribute, never grow,
  /// coverage). Sizes are proportional to shard counts; kMinAvg routes
  /// through the plan users' class sets. `rng` must be a pure function of
  /// (seed, round) so resumed runs repartition identically.
  [[nodiscard]] data::Partition materialize(const data::Dataset& train,
                                            std::size_t total_samples,
                                            common::Rng& rng) const;

 private:
  ReschedulePlan plan_;
  std::vector<std::size_t> current_shards_;
};

}  // namespace fedsched::fl::health
