#pragma once
// Per-client health tracking — the observation half of the self-healing loop.
//
// The schedulers plan from *offline* profiles, but the paper's own motivation
// (thermal throttling, battery death) means device costs drift during a run.
// HealthTracker folds what the runners actually observe — round times,
// crash/stall/retry history, battery drain — into a per-client state the
// online replanner (fl/health/replanner.hpp) can re-plan from:
//
//   * speed multiplier: an EWMA of measured/predicted round time. 1.0 means
//     the device runs on-profile; 1.4 means it has drifted 40% slow (heat,
//     persistent stalls) and its cost-matrix row should be stretched by 1.4.
//   * fault streaks: consecutive failed rounds send a client to *probation*
//     (zero shards for a bounded, exponentially backed-off number of rounds,
//     then retried); enough cumulative faults blacklist it permanently.
//   * battery projection: an EWMA of per-round state-of-charge drop projects
//     when the device will hit the death floor; clients projected to die
//     within the horizon stop receiving shards before they take a round down.
//
// Determinism: the tracker is fed from the runners' serial bookkeeping
// sections with client-indexed observation arrays, so its state — and every
// replan decision derived from it — is bit-identical at any `parallelism`
// width and serializable into checkpoints (fl/checkpoint).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fl/faults.hpp"

namespace fedsched::fl::health {

struct HealthConfig {
  /// EWMA weight of the newest measured/predicted ratio (0 < alpha <= 1).
  double ewma_alpha = 0.3;
  /// Relative drift from the multiplier baked into the current plan that
  /// triggers a replan: |ewma / planned_multiplier - 1| > drift_threshold.
  double drift_threshold = 0.25;
  /// Consecutive faulted rounds before a client is benched.
  std::size_t probation_streak = 2;
  /// Base bench length in rounds; doubles per successive probation
  /// (bounded retry-with-backoff), capped at probation_max_rounds.
  std::size_t probation_rounds = 2;
  std::size_t probation_max_rounds = 8;
  /// Cumulative failed rounds after which a client is dropped for good.
  std::size_t blacklist_faults = 6;
  /// Rounds of projected battery life a schedulable client must have left
  /// (soc - horizon * drain_ewma must stay above the floor).
  double battery_horizon_rounds = 2.0;
  /// State-of-charge floor used for the projection (mirrors the fault
  /// model's battery_floor_soc; kept separate so health can be conservative).
  double battery_floor_soc = 0.05;
  /// Minimum rounds between replans (hysteresis against thrashing).
  std::size_t replan_cooldown_rounds = 1;
  /// Simulated seconds an async client waits out its first probation; doubles
  /// per successive probation, capped at 2^6 times the base.
  double async_wait_base_s = 60.0;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

enum class ClientStatus : std::uint8_t {
  kHealthy = 0,
  kProbation,    // benched for a bounded number of rounds, then retried
  kBlacklisted,  // too many cumulative faults; permanently excluded
  kDead,         // battery hit the floor; permanently excluded
};

[[nodiscard]] const char* status_name(ClientStatus status) noexcept;

struct ClientHealth {
  ClientStatus status = ClientStatus::kHealthy;
  /// EWMA of measured/predicted round time; 1.0 until the first observation.
  double speed_ewma = 1.0;
  bool has_observation = false;
  /// Consecutive faulted rounds (reset by a completed round).
  std::size_t fault_streak = 0;
  std::size_t total_faults = 0;
  std::size_t total_retries = 0;
  /// Times this client has been benched, and rounds left on the bench.
  std::size_t probations = 0;
  std::size_t probation_remaining = 0;
  /// Cumulative shards the replanner moved away from this client.
  std::size_t reassigned_shards = 0;
  /// Last observed state of charge (-1 = no battery tracking) and the EWMA
  /// of per-round drops.
  double soc = -1.0;
  double soc_drop_ewma = 0.0;
};

class HealthTracker {
 public:
  HealthTracker(HealthConfig config, std::size_t n_clients);

  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t clients() const noexcept { return clients_.size(); }
  [[nodiscard]] const ClientHealth& client(std::size_t u) const {
    return clients_.at(u);
  }
  [[nodiscard]] const std::vector<ClientHealth>& all() const noexcept {
    return clients_;
  }

  /// One client's verdict for a finished round (or async trip).
  struct Observation {
    bool participated = false;  // held shards this round
    double predicted_s = 0.0;   // profile prediction; <= 0 skips drift update
    double measured_s = 0.0;    // simulated busy time
    FaultKind fault = FaultKind::kNone;
    bool completed = false;
    std::size_t retries = 0;
    double soc = -1.0;  // state of charge after the round; < 0 = untracked
  };

  /// Fold a full fleet round: updates EWMAs, streaks, battery projections,
  /// ticks probation clocks (benched clients count the round even though
  /// they held no shards), and applies status transitions. Call from the
  /// runner's serial section with a client-indexed vector.
  void observe_round(const std::vector<Observation>& observations);

  /// Async flavour: fold one client's finished trip immediately. Returns the
  /// simulated seconds the client must wait before its next pull (> 0 only
  /// when this trip benched it), or -1 when the client is permanently out.
  double observe_trip(std::size_t u, const Observation& observation);

  /// May the client receive shards in the next plan? False for probation /
  /// blacklisted / dead clients and for batteries projected to die within
  /// the horizon.
  [[nodiscard]] bool eligible(std::size_t u) const;

  /// Cost stretch for the scheduler: the drift EWMA, floored at 0.05 so a
  /// corrupted observation can never produce a free client.
  [[nodiscard]] double cost_multiplier(std::size_t u) const;

  /// True when the fleet has drifted from the current plan enough to replan:
  /// a status changed since the last plan, or some active client's multiplier
  /// moved more than drift_threshold from the one the plan was built with.
  /// Always false inside the cooldown window.
  [[nodiscard]] bool replan_due(std::size_t round) const;

  /// Record that a plan was (re)built at `round`: resets the drift baseline
  /// to the current multipliers and clears the status-change flag.
  void note_replan(std::size_t round);

  /// Shards the replanner moved away from client u (recovery accounting).
  void add_reassigned(std::size_t u, std::size_t shards);

  [[nodiscard]] std::size_t eligible_count() const;

  // --- checkpoint hooks (fl/checkpoint serializes these verbatim) ---------
  struct Snapshot {
    std::vector<ClientHealth> clients;
    std::vector<double> planned_multiplier;
    std::size_t last_plan_round = 0;
    bool has_plan = false;
    bool status_dirty = false;
  };
  [[nodiscard]] Snapshot snapshot() const;
  void restore(const Snapshot& snapshot);

 private:
  void apply_fault(std::size_t u);
  [[nodiscard]] bool battery_risky(const ClientHealth& c) const;

  HealthConfig config_;
  std::vector<ClientHealth> clients_;
  /// Multiplier each client carried into the current plan (drift baseline).
  std::vector<double> planned_multiplier_;
  std::size_t last_plan_round_ = 0;
  bool has_plan_ = false;
  bool status_dirty_ = false;
};

}  // namespace fedsched::fl::health
