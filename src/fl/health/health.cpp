#include "fl/health/health.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fedsched::fl::health {

void HealthConfig::validate() const {
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    throw std::invalid_argument("HealthConfig: ewma_alpha must be in (0, 1]");
  }
  if (!(drift_threshold > 0.0)) {
    throw std::invalid_argument("HealthConfig: drift_threshold must be > 0");
  }
  if (probation_streak == 0) {
    throw std::invalid_argument("HealthConfig: probation_streak must be >= 1");
  }
  if (probation_rounds == 0 || probation_max_rounds < probation_rounds) {
    throw std::invalid_argument("HealthConfig: probation_rounds must be in [1, probation_max_rounds]");
  }
  if (blacklist_faults == 0) {
    throw std::invalid_argument("HealthConfig: blacklist_faults must be >= 1");
  }
  if (battery_horizon_rounds < 0.0) {
    throw std::invalid_argument("HealthConfig: battery_horizon_rounds must be >= 0");
  }
  if (battery_floor_soc < 0.0 || battery_floor_soc >= 1.0) {
    throw std::invalid_argument("HealthConfig: battery_floor_soc must be in [0, 1)");
  }
  if (!(async_wait_base_s > 0.0)) {
    throw std::invalid_argument("HealthConfig: async_wait_base_s must be > 0");
  }
}

const char* status_name(ClientStatus status) noexcept {
  switch (status) {
    case ClientStatus::kHealthy: return "healthy";
    case ClientStatus::kProbation: return "probation";
    case ClientStatus::kBlacklisted: return "blacklisted";
    case ClientStatus::kDead: return "dead";
  }
  return "unknown";
}

HealthTracker::HealthTracker(HealthConfig config, std::size_t n_clients)
    : config_(config),
      clients_(n_clients),
      planned_multiplier_(n_clients, 1.0) {
  config_.validate();
  if (n_clients == 0) {
    throw std::invalid_argument("HealthTracker: need at least one client");
  }
}

void HealthTracker::observe_round(const std::vector<Observation>& observations) {
  if (observations.size() != clients_.size()) {
    throw std::invalid_argument("HealthTracker: observation count != client count");
  }
  // Tick probation clocks first: a benched client sits out this round whether
  // or not anyone trained, and rejoins once its clock hits zero.
  for (auto& c : clients_) {
    if (c.status == ClientStatus::kProbation && c.probation_remaining > 0) {
      if (--c.probation_remaining == 0) {
        c.status = ClientStatus::kHealthy;
        c.fault_streak = 0;
        status_dirty_ = true;
      }
    }
  }
  for (std::size_t u = 0; u < observations.size(); ++u) {
    const Observation& o = observations[u];
    ClientHealth& c = clients_[u];
    if (o.soc >= 0.0) {
      if (c.soc >= 0.0) {
        const double drop = std::max(0.0, c.soc - o.soc);
        c.soc_drop_ewma =
            (1.0 - config_.ewma_alpha) * c.soc_drop_ewma + config_.ewma_alpha * drop;
      }
      c.soc = o.soc;
    }
    if (!o.participated) continue;
    c.total_retries += o.retries;
    if (o.fault == FaultKind::kBatteryDead) {
      // Battery hit the floor mid-round: permanently out, no retry can help.
      c.status = ClientStatus::kDead;
      c.total_faults += 1;
      status_dirty_ = true;
      continue;
    }
    if (o.completed) {
      c.fault_streak = 0;
      if (o.predicted_s > 0.0 && o.measured_s > 0.0) {
        const double ratio = o.measured_s / o.predicted_s;
        c.speed_ewma = c.has_observation
                           ? (1.0 - config_.ewma_alpha) * c.speed_ewma +
                                 config_.ewma_alpha * ratio
                           : ratio;
        c.has_observation = true;
      }
      continue;
    }
    apply_fault(u);
  }
}

double HealthTracker::observe_trip(std::size_t u, const Observation& observation) {
  ClientHealth& c = clients_.at(u);
  const Observation& o = observation;
  if (o.soc >= 0.0) {
    if (c.soc >= 0.0) {
      const double drop = std::max(0.0, c.soc - o.soc);
      c.soc_drop_ewma =
          (1.0 - config_.ewma_alpha) * c.soc_drop_ewma + config_.ewma_alpha * drop;
    }
    c.soc = o.soc;
  }
  c.total_retries += o.retries;
  if (o.fault == FaultKind::kBatteryDead) {
    c.status = ClientStatus::kDead;
    c.total_faults += 1;
    status_dirty_ = true;
    return -1.0;
  }
  if (o.completed) {
    c.fault_streak = 0;
    if (o.predicted_s > 0.0 && o.measured_s > 0.0) {
      const double ratio = o.measured_s / o.predicted_s;
      c.speed_ewma = c.has_observation
                         ? (1.0 - config_.ewma_alpha) * c.speed_ewma +
                               config_.ewma_alpha * ratio
                         : ratio;
      c.has_observation = true;
    }
    return 0.0;
  }
  apply_fault(u);
  if (c.status == ClientStatus::kBlacklisted || c.status == ClientStatus::kDead) {
    return -1.0;
  }
  if (c.status == ClientStatus::kProbation) {
    // Async clients serve probation as a simulated-time wait instead of
    // benched rounds: bounded exponential backoff on successive benchings.
    // The wait *is* the bench, so the client re-enters healthy immediately —
    // the runner enforces the delay before its next pull.
    const std::size_t exponent =
        std::min<std::size_t>(c.probations > 0 ? c.probations - 1 : 0, 6);
    c.status = ClientStatus::kHealthy;
    c.probation_remaining = 0;
    return config_.async_wait_base_s * static_cast<double>(std::size_t{1} << exponent);
  }
  return 0.0;
}

void HealthTracker::apply_fault(std::size_t u) {
  ClientHealth& c = clients_[u];
  c.total_faults += 1;
  c.fault_streak += 1;
  if (c.status == ClientStatus::kBlacklisted || c.status == ClientStatus::kDead) {
    return;
  }
  if (c.total_faults >= config_.blacklist_faults) {
    c.status = ClientStatus::kBlacklisted;
    c.probation_remaining = 0;
    status_dirty_ = true;
    return;
  }
  if (c.fault_streak >= config_.probation_streak) {
    c.probations += 1;
    // Retry with backoff: each successive probation doubles the bench, capped.
    std::size_t bench = config_.probation_rounds;
    for (std::size_t i = 1; i < c.probations && bench < config_.probation_max_rounds; ++i) {
      bench *= 2;
    }
    c.probation_remaining = std::min(bench, config_.probation_max_rounds);
    c.status = ClientStatus::kProbation;
    c.fault_streak = 0;
    status_dirty_ = true;
  }
}

bool HealthTracker::battery_risky(const ClientHealth& c) const {
  if (c.soc < 0.0) return false;
  const double projected =
      c.soc - config_.battery_horizon_rounds * c.soc_drop_ewma;
  return projected <= config_.battery_floor_soc;
}

bool HealthTracker::eligible(std::size_t u) const {
  const ClientHealth& c = clients_.at(u);
  if (c.status != ClientStatus::kHealthy) return false;
  return !battery_risky(c);
}

double HealthTracker::cost_multiplier(std::size_t u) const {
  return std::max(0.05, clients_.at(u).speed_ewma);
}

bool HealthTracker::replan_due(std::size_t round) const {
  if (has_plan_ && round < last_plan_round_ + config_.replan_cooldown_rounds) {
    return false;
  }
  if (status_dirty_) return true;
  for (std::size_t u = 0; u < clients_.size(); ++u) {
    if (clients_[u].status != ClientStatus::kHealthy) continue;
    if (!clients_[u].has_observation) continue;
    const double baseline = std::max(0.05, planned_multiplier_[u]);
    const double drift = std::abs(cost_multiplier(u) / baseline - 1.0);
    if (drift > config_.drift_threshold) return true;
  }
  return false;
}

void HealthTracker::note_replan(std::size_t round) {
  for (std::size_t u = 0; u < clients_.size(); ++u) {
    planned_multiplier_[u] = cost_multiplier(u);
  }
  last_plan_round_ = round;
  has_plan_ = true;
  status_dirty_ = false;
}

void HealthTracker::add_reassigned(std::size_t u, std::size_t shards) {
  clients_.at(u).reassigned_shards += shards;
}

std::size_t HealthTracker::eligible_count() const {
  std::size_t n = 0;
  for (std::size_t u = 0; u < clients_.size(); ++u) {
    if (eligible(u)) ++n;
  }
  return n;
}

HealthTracker::Snapshot HealthTracker::snapshot() const {
  Snapshot s;
  s.clients = clients_;
  s.planned_multiplier = planned_multiplier_;
  s.last_plan_round = last_plan_round_;
  s.has_plan = has_plan_;
  s.status_dirty = status_dirty_;
  return s;
}

void HealthTracker::restore(const Snapshot& snapshot) {
  if (snapshot.clients.size() != clients_.size() ||
      snapshot.planned_multiplier.size() != clients_.size()) {
    throw std::invalid_argument("HealthTracker: snapshot client count mismatch");
  }
  clients_ = snapshot.clients;
  planned_multiplier_ = snapshot.planned_multiplier;
  last_plan_round_ = snapshot.last_plan_round;
  has_plan_ = snapshot.has_plan;
  status_dirty_ = snapshot.status_dirty;
}

}  // namespace fedsched::fl::health
