#include "fl/checkpoint/codec.hpp"

namespace fedsched::fl::checkpoint {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string seal(std::uint32_t magic, std::uint32_t version,
                 std::string_view payload) {
  const std::uint64_t size = payload.size();
  const std::uint64_t checksum = fnv1a64(payload);
  std::string out;
  out.reserve(kSealedHeaderSize + payload.size());
  out.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.append(reinterpret_cast<const char*>(&version), sizeof(version));
  out.append(reinterpret_cast<const char*>(&size), sizeof(size));
  out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.append(payload.data(), payload.size());
  return out;
}

std::string_view open(std::uint32_t magic, std::uint32_t version,
                      std::string_view sealed, const std::string& context,
                      const std::string& artifact) {
  if (sealed.size() < kSealedHeaderSize) {
    throw std::runtime_error(context + " is not a " + artifact);
  }
  std::uint32_t got_magic = 0, got_version = 0;
  std::uint64_t size = 0, checksum = 0;
  std::memcpy(&got_magic, sealed.data(), sizeof(got_magic));
  std::memcpy(&got_version, sealed.data() + 4, sizeof(got_version));
  std::memcpy(&size, sealed.data() + 8, sizeof(size));
  std::memcpy(&checksum, sealed.data() + 16, sizeof(checksum));
  if (got_magic != magic) {
    throw std::runtime_error(context + " is not a " + artifact);
  }
  if (got_version != version) {
    throw std::runtime_error(context + " has format version " +
                             std::to_string(got_version) +
                             "; this build reads version " +
                             std::to_string(version));
  }
  const std::string_view body = sealed.substr(kSealedHeaderSize);
  if (body.size() != size) {
    throw std::runtime_error(context + ": truncated " + artifact);
  }
  if (fnv1a64(body) != checksum) {
    throw std::runtime_error(context + ": checksum mismatch");
  }
  return body;
}

}  // namespace fedsched::fl::checkpoint
