#pragma once
// Deterministic checkpoint/resume for federated runs.
//
// A checkpoint captures *every* piece of mutable round-loop state — global
// model weights, per-client optimizer velocity, device clocks and thermal
// state, battery charge, the (possibly rescheduled) data partition, the
// round records so far, health-tracker state, RNG stream words, and the
// trace bytes written so far — so a run killed after round r and resumed
// from the checkpoint finishes bit-identical to one that was never
// interrupted: same RunResult floats, same trace bytes (docs/API.md
// "Checkpoint format" and tests/fl/test_checkpoint.cpp pin this).
//
// Format: a little-endian binary file (magic "FSC1", explicit version field;
// readers reject unknown versions rather than guess) plus a human-readable
// `<path>.meta.jsonl` sidecar describing the checkpoint for tooling — the
// sidecar is advisory and never read back. Since version 2 the header also
// carries the payload length and an FNV-1a checksum of the payload, and the
// loader parses out of a bounds-checked in-memory buffer: a truncated,
// bit-flipped, or otherwise mangled file is rejected with a clean
// std::runtime_error — never a crash, a huge allocation, a partial restore,
// or silent acceptance (tests/fl/test_checkpoint_corruption.cpp pins this).
//
// The fault injector needs no entry here: its draws are pure functions of
// (config, seed, round, client), so rebuilding it from the config reproduces
// the exact same fault schedule the interrupted run was on.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "data/partition.hpp"
#include "fl/health/health.hpp"
#include "fl/runner.hpp"

namespace fedsched::fl::checkpoint {

/// On-disk format version this build writes and accepts.
/// v2: checksummed payload + replication state (replica log, active flag).
inline constexpr std::uint32_t kFormatVersion = 2;

/// Complete mutable state of a synchronous run after `rounds_completed`
/// rounds. Everything a resumed run cannot re-derive from its config.
struct RunState {
  std::uint64_t seed = 0;
  std::uint64_t rounds_completed = 0;

  /// Global model: flat weights + the architecture fingerprint they belong
  /// to (load refuses a mismatched model, same as nn::load_weights).
  std::uint64_t model_fingerprint = 0;
  std::vector<float> global_params;

  /// Per-client optimizer momentum buffers (empty inner vectors when the
  /// client never trained or momentum is off).
  std::vector<std::vector<float>> velocities;

  /// Per-client device simulator state: the (clock, temperature) pair is the
  /// complete mutable state of a noise-free device.
  std::vector<double> device_clock_s;
  std::vector<double> device_temp_c;

  /// Per-client battery state of charge; empty when battery faults are off.
  std::vector<double> battery_soc;

  /// The data partition in force (differs from the caller's partition once
  /// the replanner has rescheduled).
  data::Partition partition;

  /// Round history and the accumulated simulated clock.
  std::vector<RoundRecord> rounds;
  double total_seconds = 0.0;

  /// Self-healing state. `health` is meaningful when either recovery or
  /// replication is active (both read risk from the same tracker).
  bool recovery_active = false;
  health::HealthTracker::Snapshot health;
  std::vector<std::uint64_t> replanner_shards;

  /// Speculative replication: config-match flag plus the first-finisher log
  /// accumulated so far, so a resumed run's RunResult::replica_log matches
  /// the uninterrupted run's.
  bool replication_active = false;
  std::vector<replication::ShareResolution> replica_log;

  /// The runner's base RNG stream words (defensive: fork() never advances
  /// the parent, but serializing them keeps the format honest if that
  /// changes).
  std::array<std::uint64_t, 4> rng_words{};

  /// Trace bytes written before the checkpoint (the capture buffer) and how
  /// many JSONL events they contain. A resumed run replays them verbatim so
  /// the final trace file is byte-identical to an uninterrupted run's.
  std::string trace_prefix;
  std::uint64_t trace_events = 0;
};

/// Write `state` to `path` (parent directories created) plus the
/// `<path>.meta.jsonl` sidecar. Throws std::runtime_error on I/O failure.
void save_checkpoint(const RunState& state, const std::string& path);

/// Load a checkpoint written by save_checkpoint. Throws std::runtime_error
/// on I/O failure, bad magic, or an unsupported format version.
[[nodiscard]] RunState load_checkpoint(const std::string& path);

/// Read only the `rounds_completed` field (the header and payload checksum
/// are still fully validated first). Lets the coordinator detect a
/// checkpoint one round ahead of its meta — the torn state a crash between
/// the checkpoint rename and the meta write leaves behind — without paying
/// for a full state restore.
[[nodiscard]] std::uint64_t peek_rounds_completed(const std::string& path);

}  // namespace fedsched::fl::checkpoint
