#include "fl/checkpoint/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>

#include "common/json.hpp"
#include "fl/checkpoint/codec.hpp"

namespace fedsched::fl::checkpoint {

namespace {

constexpr std::uint32_t kMagic = 0x46534331;  // "FSC1"

// v2 layout: [magic u32][version u32][payload_size u64][fnv1a64 u64][payload]
// — the shared sealed-payload codec (codec.hpp). The payload is built in
// memory, checksummed, and written in one piece; the loader verifies length
// and checksum before parsing a single field, so any corruption —
// truncation, a flipped bit anywhere, a mangled length prefix — fails up
// front with a clean error instead of a crazy allocation or a silently
// wrong restore.

using Writer = PayloadWriter;
using Reader = PayloadReader;

void put_round(Writer& out, const RoundRecord& r) {
  out.put_u64(r.round);
  out.put(r.round_seconds);
  out.put(r.cumulative_seconds);
  out.put(r.mean_train_loss);
  out.put(r.test_accuracy);
  out.put_vec(r.client_seconds);
  out.put_u64(r.completed_clients);
  out.put_u64(r.dropped_clients);
  out.put_u64(r.retry_count);
  out.put_bool(r.skipped);
  out.put_bool(r.rescheduled);
  out.put_u64(r.moved_shards);
  out.put_u64(r.client_faults.size());
  for (FaultKind kind : r.client_faults) {
    out.put(static_cast<std::uint8_t>(kind));
  }
  out.put_u64(r.replicas_assigned);
  out.put_u64(r.replicas_won);
  out.put_u64(r.shares_rescued);
}

RoundRecord get_round(Reader& in) {
  RoundRecord r;
  r.round = static_cast<std::size_t>(in.get_u64());
  r.round_seconds = in.get<double>();
  r.cumulative_seconds = in.get<double>();
  r.mean_train_loss = in.get<double>();
  r.test_accuracy = in.get<double>();
  r.client_seconds = in.get_vec<double>();
  r.completed_clients = static_cast<std::size_t>(in.get_u64());
  r.dropped_clients = static_cast<std::size_t>(in.get_u64());
  r.retry_count = static_cast<std::size_t>(in.get_u64());
  r.skipped = in.get_bool();
  r.rescheduled = in.get_bool();
  r.moved_shards = static_cast<std::size_t>(in.get_u64());
  r.client_faults.resize(in.get_count(sizeof(std::uint8_t)));
  for (auto& kind : r.client_faults) {
    kind = static_cast<FaultKind>(in.get<std::uint8_t>());
  }
  r.replicas_assigned = static_cast<std::size_t>(in.get_u64());
  r.replicas_won = static_cast<std::size_t>(in.get_u64());
  r.shares_rescued = static_cast<std::size_t>(in.get_u64());
  return r;
}

void put_client_health(Writer& out, const health::ClientHealth& c) {
  out.put(static_cast<std::uint8_t>(c.status));
  out.put(c.speed_ewma);
  out.put_bool(c.has_observation);
  out.put_u64(c.fault_streak);
  out.put_u64(c.total_faults);
  out.put_u64(c.total_retries);
  out.put_u64(c.probations);
  out.put_u64(c.probation_remaining);
  out.put_u64(c.reassigned_shards);
  out.put(c.soc);
  out.put(c.soc_drop_ewma);
}

health::ClientHealth get_client_health(Reader& in) {
  health::ClientHealth c;
  c.status = static_cast<health::ClientStatus>(in.get<std::uint8_t>());
  c.speed_ewma = in.get<double>();
  c.has_observation = in.get_bool();
  c.fault_streak = static_cast<std::size_t>(in.get_u64());
  c.total_faults = static_cast<std::size_t>(in.get_u64());
  c.total_retries = static_cast<std::size_t>(in.get_u64());
  c.probations = static_cast<std::size_t>(in.get_u64());
  c.probation_remaining = static_cast<std::size_t>(in.get_u64());
  c.reassigned_shards = static_cast<std::size_t>(in.get_u64());
  c.soc = in.get<double>();
  c.soc_drop_ewma = in.get<double>();
  return c;
}

void put_resolution(Writer& out, const replication::ShareResolution& r) {
  out.put_u64(r.owner);
  out.put_bool(r.arrived);
  out.put_bool(r.rescued);
  out.put_u64(r.winner);
  out.put(r.finish_s);
  out.put_u64(r.replicas);
  out.put_u64(r.replicas_completed);
}

replication::ShareResolution get_resolution(Reader& in) {
  replication::ShareResolution r;
  r.owner = static_cast<std::size_t>(in.get_u64());
  r.arrived = in.get_bool();
  r.rescued = in.get_bool();
  r.winner = static_cast<std::size_t>(in.get_u64());
  r.finish_s = in.get<double>();
  r.replicas = static_cast<std::size_t>(in.get_u64());
  r.replicas_completed = static_cast<std::size_t>(in.get_u64());
  return r;
}

void write_sidecar(const RunState& state, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  common::JsonObject meta;
  meta.field("format", "fedsched-checkpoint");
  meta.field("version", static_cast<std::size_t>(kFormatVersion));
  meta.field("round", static_cast<std::size_t>(state.rounds_completed));
  meta.field("seed", static_cast<std::size_t>(state.seed));
  meta.field("clients", state.device_clock_s.size());
  meta.field("param_count", state.global_params.size());
  meta.field("total_seconds", state.total_seconds);
  meta.field("recovery_active", state.recovery_active);
  meta.field("replication_active", state.replication_active);
  meta.field("replica_resolutions", state.replica_log.size());
  meta.field("battery_tracked", !state.battery_soc.empty());
  meta.field("trace_events", static_cast<std::size_t>(state.trace_events));
  meta.field("trace_bytes", state.trace_prefix.size());
  out << meta.str() << '\n';
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

}  // namespace

void save_checkpoint(const RunState& state, const std::string& path) {
  Writer payload;
  payload.put_u64(state.seed);
  payload.put_u64(state.rounds_completed);

  payload.put_u64(state.model_fingerprint);
  payload.put_vec(state.global_params);

  payload.put_u64(state.velocities.size());
  for (const auto& v : state.velocities) payload.put_vec(v);

  payload.put_vec(state.device_clock_s);
  payload.put_vec(state.device_temp_c);
  payload.put_vec(state.battery_soc);

  payload.put_u64(state.partition.user_indices.size());
  for (const auto& share : state.partition.user_indices) {
    payload.put_size_vec(share);
  }

  payload.put_u64(state.rounds.size());
  for (const RoundRecord& r : state.rounds) put_round(payload, r);
  payload.put(state.total_seconds);

  payload.put_bool(state.recovery_active);
  payload.put_u64(state.health.clients.size());
  for (const auto& c : state.health.clients) put_client_health(payload, c);
  payload.put_vec(state.health.planned_multiplier);
  payload.put_u64(state.health.last_plan_round);
  payload.put_bool(state.health.has_plan);
  payload.put_bool(state.health.status_dirty);
  payload.put_vec(state.replanner_shards);

  payload.put_bool(state.replication_active);
  payload.put_u64(state.replica_log.size());
  for (const auto& r : state.replica_log) put_resolution(payload, r);

  for (std::uint64_t word : state.rng_words) payload.put_u64(word);

  payload.put_u64(state.trace_events);
  payload.put_bytes(state.trace_prefix);

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  const std::string sealed = seal(kMagic, kFormatVersion, payload.bytes());
  out.write(sealed.data(), static_cast<std::streamsize>(sealed.size()));
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
  out.close();
  write_sidecar(state, path + ".meta.jsonl");
}

std::uint64_t peek_rounds_completed(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("peek_rounds_completed: cannot open " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("peek_rounds_completed: read failed for " + path);
  }
  const std::string_view body = open(kMagic, kFormatVersion, file,
                                     "peek_rounds_completed: " + path,
                                     "fedsched checkpoint");
  Reader payload(body, "peek_rounds_completed: " + path);
  (void)payload.get_u64();    // seed
  return payload.get_u64();   // rounds_completed
}

RunState load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("load_checkpoint: read failed for " + path);

  const std::string_view body = open(kMagic, kFormatVersion, file,
                                     "load_checkpoint: " + path,
                                     "fedsched checkpoint");

  Reader payload(body, "load_checkpoint: " + path);
  RunState state;
  state.seed = payload.get_u64();
  state.rounds_completed = payload.get_u64();

  state.model_fingerprint = payload.get_u64();
  state.global_params = payload.get_vec<float>();

  state.velocities.resize(payload.get_count(sizeof(std::uint64_t)));
  for (auto& v : state.velocities) v = payload.get_vec<float>();

  state.device_clock_s = payload.get_vec<double>();
  state.device_temp_c = payload.get_vec<double>();
  state.battery_soc = payload.get_vec<double>();

  state.partition.user_indices.resize(payload.get_count(sizeof(std::uint64_t)));
  for (auto& share : state.partition.user_indices) share = payload.get_size_vec();

  state.rounds.resize(payload.get_count(1));
  for (auto& r : state.rounds) r = get_round(payload);
  state.total_seconds = payload.get<double>();

  state.recovery_active = payload.get_bool();
  state.health.clients.resize(payload.get_count(1));
  for (auto& c : state.health.clients) c = get_client_health(payload);
  state.health.planned_multiplier = payload.get_vec<double>();
  state.health.last_plan_round = static_cast<std::size_t>(payload.get_u64());
  state.health.has_plan = payload.get_bool();
  state.health.status_dirty = payload.get_bool();
  state.replanner_shards = payload.get_vec<std::uint64_t>();

  state.replication_active = payload.get_bool();
  state.replica_log.resize(payload.get_count(1));
  for (auto& r : state.replica_log) r = get_resolution(payload);

  for (auto& word : state.rng_words) word = payload.get_u64();

  state.trace_events = payload.get_u64();
  state.trace_prefix = payload.get_bytes();

  payload.expect_exhausted();
  return state;
}

}  // namespace fedsched::fl::checkpoint
