#include "fl/checkpoint/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/json.hpp"

namespace fedsched::fl::checkpoint {

namespace {

constexpr std::uint32_t kMagic = 0x46534331;  // "FSC1"

// Little-endian raw scalar I/O (matches nn/serialize.cpp; the testbed is
// homogeneous x86-64/aarch64-LE, and the magic word would read back-to-front
// on a BE host anyway).
template <typename T>
void put(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return value;
}

void put_u64(std::ofstream& out, std::uint64_t v) { put(out, v); }
std::uint64_t get_u64(std::ifstream& in) { return get<std::uint64_t>(in); }

template <typename T>
void put_vec(std::ofstream& out, const std::vector<T>& v) {
  put_u64(out, v.size());
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
std::vector<T> get_vec(std::ifstream& in) {
  std::vector<T> v(get_u64(in));
  if (!v.empty()) {
    in.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
  return v;
}

void put_f64_vec(std::ofstream& out, const std::vector<double>& v) { put_vec(out, v); }
std::vector<double> get_f64_vec(std::ifstream& in) { return get_vec<double>(in); }
void put_f32_vec(std::ofstream& out, const std::vector<float>& v) { put_vec(out, v); }
std::vector<float> get_f32_vec(std::ifstream& in) { return get_vec<float>(in); }
void put_u64_vec(std::ofstream& out, const std::vector<std::uint64_t>& v) {
  put_vec(out, v);
}
std::vector<std::uint64_t> get_u64_vec(std::ifstream& in) {
  return get_vec<std::uint64_t>(in);
}

void put_size_vec(std::ofstream& out, const std::vector<std::size_t>& v) {
  put_u64(out, v.size());
  for (std::size_t x : v) put_u64(out, static_cast<std::uint64_t>(x));
}

std::vector<std::size_t> get_size_vec(std::ifstream& in) {
  std::vector<std::size_t> v(get_u64(in));
  for (auto& x : v) x = static_cast<std::size_t>(get_u64(in));
  return v;
}

void put_round(std::ofstream& out, const RoundRecord& r) {
  put_u64(out, r.round);
  put(out, r.round_seconds);
  put(out, r.cumulative_seconds);
  put(out, r.mean_train_loss);
  put(out, r.test_accuracy);
  put_f64_vec(out, r.client_seconds);
  put_u64(out, r.completed_clients);
  put_u64(out, r.dropped_clients);
  put_u64(out, r.retry_count);
  put(out, static_cast<std::uint8_t>(r.skipped ? 1 : 0));
  put(out, static_cast<std::uint8_t>(r.rescheduled ? 1 : 0));
  put_u64(out, r.moved_shards);
  put_u64(out, r.client_faults.size());
  for (FaultKind kind : r.client_faults) {
    put(out, static_cast<std::uint8_t>(kind));
  }
}

RoundRecord get_round(std::ifstream& in) {
  RoundRecord r;
  r.round = static_cast<std::size_t>(get_u64(in));
  r.round_seconds = get<double>(in);
  r.cumulative_seconds = get<double>(in);
  r.mean_train_loss = get<double>(in);
  r.test_accuracy = get<double>(in);
  r.client_seconds = get_f64_vec(in);
  r.completed_clients = static_cast<std::size_t>(get_u64(in));
  r.dropped_clients = static_cast<std::size_t>(get_u64(in));
  r.retry_count = static_cast<std::size_t>(get_u64(in));
  r.skipped = get<std::uint8_t>(in) != 0;
  r.rescheduled = get<std::uint8_t>(in) != 0;
  r.moved_shards = static_cast<std::size_t>(get_u64(in));
  r.client_faults.resize(get_u64(in));
  for (auto& kind : r.client_faults) {
    kind = static_cast<FaultKind>(get<std::uint8_t>(in));
  }
  return r;
}

void put_client_health(std::ofstream& out, const health::ClientHealth& c) {
  put(out, static_cast<std::uint8_t>(c.status));
  put(out, c.speed_ewma);
  put(out, static_cast<std::uint8_t>(c.has_observation ? 1 : 0));
  put_u64(out, c.fault_streak);
  put_u64(out, c.total_faults);
  put_u64(out, c.total_retries);
  put_u64(out, c.probations);
  put_u64(out, c.probation_remaining);
  put_u64(out, c.reassigned_shards);
  put(out, c.soc);
  put(out, c.soc_drop_ewma);
}

health::ClientHealth get_client_health(std::ifstream& in) {
  health::ClientHealth c;
  c.status = static_cast<health::ClientStatus>(get<std::uint8_t>(in));
  c.speed_ewma = get<double>(in);
  c.has_observation = get<std::uint8_t>(in) != 0;
  c.fault_streak = static_cast<std::size_t>(get_u64(in));
  c.total_faults = static_cast<std::size_t>(get_u64(in));
  c.total_retries = static_cast<std::size_t>(get_u64(in));
  c.probations = static_cast<std::size_t>(get_u64(in));
  c.probation_remaining = static_cast<std::size_t>(get_u64(in));
  c.reassigned_shards = static_cast<std::size_t>(get_u64(in));
  c.soc = get<double>(in);
  c.soc_drop_ewma = get<double>(in);
  return c;
}

void write_sidecar(const RunState& state, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  common::JsonObject meta;
  meta.field("format", "fedsched-checkpoint");
  meta.field("version", static_cast<std::size_t>(kFormatVersion));
  meta.field("round", static_cast<std::size_t>(state.rounds_completed));
  meta.field("seed", static_cast<std::size_t>(state.seed));
  meta.field("clients", state.device_clock_s.size());
  meta.field("param_count", state.global_params.size());
  meta.field("total_seconds", state.total_seconds);
  meta.field("recovery_active", state.recovery_active);
  meta.field("battery_tracked", !state.battery_soc.empty());
  meta.field("trace_events", static_cast<std::size_t>(state.trace_events));
  meta.field("trace_bytes", state.trace_prefix.size());
  out << meta.str() << '\n';
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

}  // namespace

void save_checkpoint(const RunState& state, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);

  put(out, kMagic);
  put(out, kFormatVersion);
  put_u64(out, state.seed);
  put_u64(out, state.rounds_completed);

  put_u64(out, state.model_fingerprint);
  put_f32_vec(out, state.global_params);

  put_u64(out, state.velocities.size());
  for (const auto& v : state.velocities) put_f32_vec(out, v);

  put_f64_vec(out, state.device_clock_s);
  put_f64_vec(out, state.device_temp_c);
  put_f64_vec(out, state.battery_soc);

  put_u64(out, state.partition.user_indices.size());
  for (const auto& share : state.partition.user_indices) put_size_vec(out, share);

  put_u64(out, state.rounds.size());
  for (const RoundRecord& r : state.rounds) put_round(out, r);
  put(out, state.total_seconds);

  put(out, static_cast<std::uint8_t>(state.recovery_active ? 1 : 0));
  put_u64(out, state.health.clients.size());
  for (const auto& c : state.health.clients) put_client_health(out, c);
  put_f64_vec(out, state.health.planned_multiplier);
  put_u64(out, state.health.last_plan_round);
  put(out, static_cast<std::uint8_t>(state.health.has_plan ? 1 : 0));
  put(out, static_cast<std::uint8_t>(state.health.status_dirty ? 1 : 0));
  put_u64_vec(out, state.replanner_shards);

  for (std::uint64_t word : state.rng_words) put_u64(out, word);

  put_u64(out, state.trace_events);
  put_u64(out, state.trace_prefix.size());
  out.write(state.trace_prefix.data(),
            static_cast<std::streamsize>(state.trace_prefix.size()));

  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
  out.close();
  write_sidecar(state, path + ".meta.jsonl");
}

RunState load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);

  const auto magic = get<std::uint32_t>(in);
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_checkpoint: " + path +
                             " is not a fedsched checkpoint");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kFormatVersion) {
    throw std::runtime_error("load_checkpoint: " + path + " has format version " +
                             std::to_string(version) + "; this build reads version " +
                             std::to_string(kFormatVersion));
  }

  RunState state;
  state.seed = get_u64(in);
  state.rounds_completed = get_u64(in);

  state.model_fingerprint = get_u64(in);
  state.global_params = get_f32_vec(in);

  state.velocities.resize(get_u64(in));
  for (auto& v : state.velocities) v = get_f32_vec(in);

  state.device_clock_s = get_f64_vec(in);
  state.device_temp_c = get_f64_vec(in);
  state.battery_soc = get_f64_vec(in);

  state.partition.user_indices.resize(get_u64(in));
  for (auto& share : state.partition.user_indices) share = get_size_vec(in);

  state.rounds.resize(get_u64(in));
  for (auto& r : state.rounds) r = get_round(in);
  state.total_seconds = get<double>(in);

  state.recovery_active = get<std::uint8_t>(in) != 0;
  state.health.clients.resize(get_u64(in));
  for (auto& c : state.health.clients) c = get_client_health(in);
  state.health.planned_multiplier = get_f64_vec(in);
  state.health.last_plan_round = static_cast<std::size_t>(get_u64(in));
  state.health.has_plan = get<std::uint8_t>(in) != 0;
  state.health.status_dirty = get<std::uint8_t>(in) != 0;
  state.replanner_shards = get_u64_vec(in);

  for (auto& word : state.rng_words) word = get_u64(in);

  state.trace_events = get_u64(in);
  state.trace_prefix.resize(get_u64(in));
  in.read(state.trace_prefix.data(),
          static_cast<std::streamsize>(state.trace_prefix.size()));

  if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
  return state;
}

}  // namespace fedsched::fl::checkpoint
