#include "fl/checkpoint/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>
#include <type_traits>

#include "common/json.hpp"

namespace fedsched::fl::checkpoint {

namespace {

constexpr std::uint32_t kMagic = 0x46534331;  // "FSC1"

// v2 layout: [magic u32][version u32][payload_size u64][fnv1a64 u64][payload].
// The payload is built in memory, checksummed, and written in one piece; the
// loader verifies length and checksum before parsing a single field, so any
// corruption — truncation, a flipped bit anywhere, a mangled length prefix —
// fails up front with a clean error instead of a crazy allocation or a
// silently wrong restore.

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

// Little-endian raw scalar I/O into an in-memory buffer (matches
// nn/serialize.cpp; the testbed is homogeneous x86-64/aarch64-LE, and the
// magic word would read back-to-front on a BE host anyway).
class Writer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&value);
    buf_.append(p, sizeof(T));
  }
  void put_u64(std::uint64_t v) { put(v); }
  void put_bool(bool v) { put(static_cast<std::uint8_t>(v ? 1 : 0)); }

  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u64(v.size());
    if (!v.empty()) {
      buf_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
    }
  }
  void put_size_vec(const std::vector<std::size_t>& v) {
    put_u64(v.size());
    for (std::size_t x : v) put_u64(static_cast<std::uint64_t>(x));
  }
  void put_bytes(std::string_view bytes) {
    put_u64(bytes.size());
    buf_.append(bytes.data(), bytes.size());
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }

 private:
  std::string buf_;
};

// Bounds-checked reader over the verified payload. The checksum already
// guarantees the bytes are exactly what the writer produced; the bounds
// checks keep a reader/writer schema skew from running off the buffer.
class Reader {
 public:
  Reader(std::string_view bytes, std::string path)
      : bytes_(bytes), path_(std::move(path)) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    std::memcpy(&value, need(sizeof(T)), sizeof(T));
    return value;
  }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  bool get_bool() { return get<std::uint8_t>() != 0; }

  /// Element count for a vector about to be read: refuses counts the
  /// remaining payload cannot possibly hold, so a mangled length prefix can
  /// never drive a multi-gigabyte resize().
  std::size_t get_count(std::size_t elem_size) {
    const std::uint64_t n = get_u64();
    if (elem_size > 0 && n > remaining() / elem_size) corrupt();
    return static_cast<std::size_t>(n);
  }

  template <typename T>
  std::vector<T> get_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> v(get_count(sizeof(T)));
    if (!v.empty()) {
      std::memcpy(v.data(), need(v.size() * sizeof(T)), v.size() * sizeof(T));
    }
    return v;
  }
  std::vector<std::size_t> get_size_vec() {
    std::vector<std::size_t> v(get_count(sizeof(std::uint64_t)));
    for (auto& x : v) x = static_cast<std::size_t>(get_u64());
    return v;
  }
  std::string get_bytes() {
    const std::size_t n = get_count(1);
    return std::string(need(n), n);
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  /// The runner's loader must consume the payload exactly.
  void expect_exhausted() const {
    if (remaining() != 0) corrupt();
  }

  [[noreturn]] void corrupt() const {
    throw std::runtime_error("load_checkpoint: corrupt checkpoint " + path_);
  }

 private:
  const char* need(std::size_t n) {
    if (n > remaining()) corrupt();
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::string_view bytes_;
  std::string path_;
  std::size_t pos_ = 0;
};

void put_round(Writer& out, const RoundRecord& r) {
  out.put_u64(r.round);
  out.put(r.round_seconds);
  out.put(r.cumulative_seconds);
  out.put(r.mean_train_loss);
  out.put(r.test_accuracy);
  out.put_vec(r.client_seconds);
  out.put_u64(r.completed_clients);
  out.put_u64(r.dropped_clients);
  out.put_u64(r.retry_count);
  out.put_bool(r.skipped);
  out.put_bool(r.rescheduled);
  out.put_u64(r.moved_shards);
  out.put_u64(r.client_faults.size());
  for (FaultKind kind : r.client_faults) {
    out.put(static_cast<std::uint8_t>(kind));
  }
  out.put_u64(r.replicas_assigned);
  out.put_u64(r.replicas_won);
  out.put_u64(r.shares_rescued);
}

RoundRecord get_round(Reader& in) {
  RoundRecord r;
  r.round = static_cast<std::size_t>(in.get_u64());
  r.round_seconds = in.get<double>();
  r.cumulative_seconds = in.get<double>();
  r.mean_train_loss = in.get<double>();
  r.test_accuracy = in.get<double>();
  r.client_seconds = in.get_vec<double>();
  r.completed_clients = static_cast<std::size_t>(in.get_u64());
  r.dropped_clients = static_cast<std::size_t>(in.get_u64());
  r.retry_count = static_cast<std::size_t>(in.get_u64());
  r.skipped = in.get_bool();
  r.rescheduled = in.get_bool();
  r.moved_shards = static_cast<std::size_t>(in.get_u64());
  r.client_faults.resize(in.get_count(sizeof(std::uint8_t)));
  for (auto& kind : r.client_faults) {
    kind = static_cast<FaultKind>(in.get<std::uint8_t>());
  }
  r.replicas_assigned = static_cast<std::size_t>(in.get_u64());
  r.replicas_won = static_cast<std::size_t>(in.get_u64());
  r.shares_rescued = static_cast<std::size_t>(in.get_u64());
  return r;
}

void put_client_health(Writer& out, const health::ClientHealth& c) {
  out.put(static_cast<std::uint8_t>(c.status));
  out.put(c.speed_ewma);
  out.put_bool(c.has_observation);
  out.put_u64(c.fault_streak);
  out.put_u64(c.total_faults);
  out.put_u64(c.total_retries);
  out.put_u64(c.probations);
  out.put_u64(c.probation_remaining);
  out.put_u64(c.reassigned_shards);
  out.put(c.soc);
  out.put(c.soc_drop_ewma);
}

health::ClientHealth get_client_health(Reader& in) {
  health::ClientHealth c;
  c.status = static_cast<health::ClientStatus>(in.get<std::uint8_t>());
  c.speed_ewma = in.get<double>();
  c.has_observation = in.get_bool();
  c.fault_streak = static_cast<std::size_t>(in.get_u64());
  c.total_faults = static_cast<std::size_t>(in.get_u64());
  c.total_retries = static_cast<std::size_t>(in.get_u64());
  c.probations = static_cast<std::size_t>(in.get_u64());
  c.probation_remaining = static_cast<std::size_t>(in.get_u64());
  c.reassigned_shards = static_cast<std::size_t>(in.get_u64());
  c.soc = in.get<double>();
  c.soc_drop_ewma = in.get<double>();
  return c;
}

void put_resolution(Writer& out, const replication::ShareResolution& r) {
  out.put_u64(r.owner);
  out.put_bool(r.arrived);
  out.put_bool(r.rescued);
  out.put_u64(r.winner);
  out.put(r.finish_s);
  out.put_u64(r.replicas);
  out.put_u64(r.replicas_completed);
}

replication::ShareResolution get_resolution(Reader& in) {
  replication::ShareResolution r;
  r.owner = static_cast<std::size_t>(in.get_u64());
  r.arrived = in.get_bool();
  r.rescued = in.get_bool();
  r.winner = static_cast<std::size_t>(in.get_u64());
  r.finish_s = in.get<double>();
  r.replicas = static_cast<std::size_t>(in.get_u64());
  r.replicas_completed = static_cast<std::size_t>(in.get_u64());
  return r;
}

void write_sidecar(const RunState& state, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  common::JsonObject meta;
  meta.field("format", "fedsched-checkpoint");
  meta.field("version", static_cast<std::size_t>(kFormatVersion));
  meta.field("round", static_cast<std::size_t>(state.rounds_completed));
  meta.field("seed", static_cast<std::size_t>(state.seed));
  meta.field("clients", state.device_clock_s.size());
  meta.field("param_count", state.global_params.size());
  meta.field("total_seconds", state.total_seconds);
  meta.field("recovery_active", state.recovery_active);
  meta.field("replication_active", state.replication_active);
  meta.field("replica_resolutions", state.replica_log.size());
  meta.field("battery_tracked", !state.battery_soc.empty());
  meta.field("trace_events", static_cast<std::size_t>(state.trace_events));
  meta.field("trace_bytes", state.trace_prefix.size());
  out << meta.str() << '\n';
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
}

}  // namespace

void save_checkpoint(const RunState& state, const std::string& path) {
  Writer payload;
  payload.put_u64(state.seed);
  payload.put_u64(state.rounds_completed);

  payload.put_u64(state.model_fingerprint);
  payload.put_vec(state.global_params);

  payload.put_u64(state.velocities.size());
  for (const auto& v : state.velocities) payload.put_vec(v);

  payload.put_vec(state.device_clock_s);
  payload.put_vec(state.device_temp_c);
  payload.put_vec(state.battery_soc);

  payload.put_u64(state.partition.user_indices.size());
  for (const auto& share : state.partition.user_indices) {
    payload.put_size_vec(share);
  }

  payload.put_u64(state.rounds.size());
  for (const RoundRecord& r : state.rounds) put_round(payload, r);
  payload.put(state.total_seconds);

  payload.put_bool(state.recovery_active);
  payload.put_u64(state.health.clients.size());
  for (const auto& c : state.health.clients) put_client_health(payload, c);
  payload.put_vec(state.health.planned_multiplier);
  payload.put_u64(state.health.last_plan_round);
  payload.put_bool(state.health.has_plan);
  payload.put_bool(state.health.status_dirty);
  payload.put_vec(state.replanner_shards);

  payload.put_bool(state.replication_active);
  payload.put_u64(state.replica_log.size());
  for (const auto& r : state.replica_log) put_resolution(payload, r);

  for (std::uint64_t word : state.rng_words) payload.put_u64(word);

  payload.put_u64(state.trace_events);
  payload.put_bytes(state.trace_prefix);

  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  const std::string& body = payload.bytes();
  const std::uint64_t size = body.size();
  const std::uint64_t checksum = fnv1a64(body);
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kFormatVersion), sizeof(kFormatVersion));
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out) throw std::runtime_error("save_checkpoint: write failed for " + path);
  out.close();
  write_sidecar(state, path + ".meta.jsonl");
}

RunState load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("load_checkpoint: read failed for " + path);

  constexpr std::size_t kHeaderSize =
      sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * 2;
  if (file.size() < kHeaderSize) {
    throw std::runtime_error("load_checkpoint: " + path +
                             " is not a fedsched checkpoint");
  }
  std::uint32_t magic = 0, version = 0;
  std::uint64_t size = 0, checksum = 0;
  std::memcpy(&magic, file.data(), sizeof(magic));
  std::memcpy(&version, file.data() + 4, sizeof(version));
  std::memcpy(&size, file.data() + 8, sizeof(size));
  std::memcpy(&checksum, file.data() + 16, sizeof(checksum));
  if (magic != kMagic) {
    throw std::runtime_error("load_checkpoint: " + path +
                             " is not a fedsched checkpoint");
  }
  if (version != kFormatVersion) {
    throw std::runtime_error("load_checkpoint: " + path + " has format version " +
                             std::to_string(version) + "; this build reads version " +
                             std::to_string(kFormatVersion));
  }
  const std::string_view body(file.data() + kHeaderSize,
                              file.size() - kHeaderSize);
  if (body.size() != size) {
    throw std::runtime_error("load_checkpoint: truncated file " + path);
  }
  if (fnv1a64(body) != checksum) {
    throw std::runtime_error("load_checkpoint: checksum mismatch in " + path);
  }

  Reader payload(body, path);
  RunState state;
  state.seed = payload.get_u64();
  state.rounds_completed = payload.get_u64();

  state.model_fingerprint = payload.get_u64();
  state.global_params = payload.get_vec<float>();

  state.velocities.resize(payload.get_count(sizeof(std::uint64_t)));
  for (auto& v : state.velocities) v = payload.get_vec<float>();

  state.device_clock_s = payload.get_vec<double>();
  state.device_temp_c = payload.get_vec<double>();
  state.battery_soc = payload.get_vec<double>();

  state.partition.user_indices.resize(payload.get_count(sizeof(std::uint64_t)));
  for (auto& share : state.partition.user_indices) share = payload.get_size_vec();

  state.rounds.resize(payload.get_count(1));
  for (auto& r : state.rounds) r = get_round(payload);
  state.total_seconds = payload.get<double>();

  state.recovery_active = payload.get_bool();
  state.health.clients.resize(payload.get_count(1));
  for (auto& c : state.health.clients) c = get_client_health(payload);
  state.health.planned_multiplier = payload.get_vec<double>();
  state.health.last_plan_round = static_cast<std::size_t>(payload.get_u64());
  state.health.has_plan = payload.get_bool();
  state.health.status_dirty = payload.get_bool();
  state.replanner_shards = payload.get_vec<std::uint64_t>();

  state.replication_active = payload.get_bool();
  state.replica_log.resize(payload.get_count(1));
  for (auto& r : state.replica_log) r = get_resolution(payload);

  for (auto& word : state.rng_words) word = payload.get_u64();

  state.trace_events = payload.get_u64();
  state.trace_prefix = payload.get_bytes();

  payload.expect_exhausted();
  return state;
}

}  // namespace fedsched::fl::checkpoint
