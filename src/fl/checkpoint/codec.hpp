#pragma once
// Shared binary payload codec behind every durable/serialized artifact that
// needs the checkpoint-v2 hardening: the FSC1 run checkpoint, the
// coordinator's fleet-run snapshots, and the coordinator wire protocol's
// frames. One layout everywhere:
//
//   [magic u32][version u32][payload_size u64][fnv1a64 u64][payload bytes]
//
// seal() builds the header over an in-memory payload; open() verifies magic,
// version, exact length and checksum *before* handing out a single payload
// byte, so truncation, a flipped bit anywhere, or a mangled length prefix
// fails with a clean std::runtime_error — never a crash, a huge allocation,
// or silent acceptance (tests/fl/test_checkpoint_corruption.cpp and
// tests/coord/test_wire.cpp pin this for their formats).
//
// PayloadWriter / PayloadReader are the little-endian scalar codecs the
// checkpoint has always used; the Reader additionally bounds-checks every
// read and refuses element counts the remaining payload cannot hold.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fedsched::fl::checkpoint {

/// FNV-1a over raw bytes — the integrity checksum of every sealed payload.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Fixed sealed-header size: magic + version + payload_size + checksum.
inline constexpr std::size_t kSealedHeaderSize =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * 2;

/// `payload` wrapped in a sealed header (see file comment for the layout).
[[nodiscard]] std::string seal(std::uint32_t magic, std::uint32_t version,
                               std::string_view payload);

/// Validate a sealed buffer and return a view of its payload. `context`
/// prefixes error messages ("load_checkpoint: /path/x", "coord wire frame")
/// and `artifact` names the expected format ("fedsched checkpoint") so a
/// bad-magic error reads "<context> is not a <artifact>". Throws
/// std::runtime_error on short input, wrong magic, unsupported version,
/// length mismatch, or checksum mismatch.
[[nodiscard]] std::string_view open(std::uint32_t magic, std::uint32_t version,
                                    std::string_view sealed,
                                    const std::string& context,
                                    const std::string& artifact);

/// Little-endian raw scalar serialization into an in-memory buffer (matches
/// nn/serialize.cpp; the testbed is homogeneous x86-64/aarch64-LE, and the
/// magic word would read back-to-front on a BE host anyway).
class PayloadWriter {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const char*>(&value);
    buf_.append(p, sizeof(T));
  }
  void put_u64(std::uint64_t v) { put(v); }
  void put_bool(bool v) { put(static_cast<std::uint8_t>(v ? 1 : 0)); }

  template <typename T>
  void put_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_u64(v.size());
    if (!v.empty()) {
      buf_.append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
    }
  }
  void put_size_vec(const std::vector<std::size_t>& v) {
    put_u64(v.size());
    for (std::size_t x : v) put_u64(static_cast<std::uint64_t>(x));
  }
  void put_bytes(std::string_view bytes) {
    put_u64(bytes.size());
    buf_.append(bytes.data(), bytes.size());
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a verified payload. The checksum already
/// guarantees the bytes are exactly what the writer produced; the bounds
/// checks keep a reader/writer schema skew from running off the buffer.
class PayloadReader {
 public:
  PayloadReader(std::string_view bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    std::memcpy(&value, need(sizeof(T)), sizeof(T));
    return value;
  }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  bool get_bool() { return get<std::uint8_t>() != 0; }

  /// Element count for a vector about to be read: refuses counts the
  /// remaining payload cannot possibly hold, so a mangled length prefix can
  /// never drive a multi-gigabyte resize().
  std::size_t get_count(std::size_t elem_size) {
    const std::uint64_t n = get_u64();
    if (elem_size > 0 && n > remaining() / elem_size) corrupt();
    return static_cast<std::size_t>(n);
  }

  template <typename T>
  std::vector<T> get_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> v(get_count(sizeof(T)));
    if (!v.empty()) {
      std::memcpy(v.data(), need(v.size() * sizeof(T)), v.size() * sizeof(T));
    }
    return v;
  }
  std::vector<std::size_t> get_size_vec() {
    std::vector<std::size_t> v(get_count(sizeof(std::uint64_t)));
    for (auto& x : v) x = static_cast<std::size_t>(get_u64());
    return v;
  }
  std::string get_bytes() {
    const std::size_t n = get_count(1);
    return std::string(need(n), n);
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  /// The loader must consume the payload exactly.
  void expect_exhausted() const {
    if (remaining() != 0) corrupt();
  }

  [[noreturn]] void corrupt() const {
    throw std::runtime_error(context_ + ": corrupt payload");
  }

 private:
  const char* need(std::size_t n) {
    if (n > remaining()) corrupt();
    const char* p = bytes_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::string_view bytes_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace fedsched::fl::checkpoint
