#pragma once
// Decentralized FL (gossip averaging) — the server-less topology the paper
// notes its framework is "amenable to" (Section IV-A, citing decentralized
// PSGD [8]).
//
// Each round every client trains locally, then averages its parameters with
// its neighbors' post-training parameters, weighted by sample counts over the
// closed neighborhood (a doubly-stochastic-in-expectation mixing for the
// ring; exact FedAvg when the graph is complete). Round time is still the
// synchronous makespan: neighbors exchange models peer-to-peer, so each
// client pays one upload and degree downloads of the model.

#include "data/partition.hpp"
#include "fl/runner.hpp"

namespace fedsched::fl {

enum class Topology {
  kRing,      // each client exchanges with its two neighbors
  kComplete,  // all-to-all: equivalent to FedAvg with a virtual server
};

[[nodiscard]] const char* topology_name(Topology topology) noexcept;

/// Neighbor lists (excluding self) for n clients under the topology.
[[nodiscard]] std::vector<std::vector<std::size_t>> build_topology(Topology topology,
                                                                   std::size_t n);

struct GossipConfig {
  std::size_t rounds = 10;
  std::size_t batch_size = 20;
  nn::SgdConfig sgd{.learning_rate = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f};
  Topology topology = Topology::kRing;
  std::uint64_t seed = 1;
  /// Host threads training clients concurrently: 0 = hardware concurrency,
  /// 1 = serial legacy path. Results are identical for every value.
  std::size_t parallelism = 0;
  /// Round deadline (simulated seconds): clients that miss it are excluded
  /// from this round's mixing. Infinity = wait for everyone.
  double deadline_s = kNoDeadline;
  /// Fault injection; a dropped client neither shares its update nor mixes
  /// its neighbors' — it keeps its pre-round parameters.
  FaultConfig faults;
  /// Observability sinks (non-owning; may be null) — see FlConfig.
  obs::TraceWriter* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Self-healing: health tracking + online rescheduling (fl/health). There
  /// is no server, so think of this as the fleet's shared membership view.
  /// Checkpointing is not supported for gossip runs.
  health::ReschedulePlan reschedule;
  /// Speculative shard replication (fl/replication): a healthy neighbor
  /// re-trains an at-risk peer's share so the fleet still mixes that share's
  /// update when the peer drops. Off = bit-identical to replication-free
  /// gossip runs.
  replication::ReplicationConfig replicate;
};

struct GossipRunResult {
  std::vector<RoundRecord> rounds;
  /// Accuracy of every client's final local model (they need not agree).
  std::vector<double> client_accuracy;
  double mean_accuracy = 0.0;
  /// Max pairwise L2 distance between client models after the last round —
  /// the consensus error the averaging is supposed to shrink.
  double consensus_gap = 0.0;
  double total_seconds = 0.0;
  /// Final per-client health state (empty when both rescheduling and
  /// replication are off).
  std::vector<health::ClientHealth> client_health;
  /// First-finisher verdict of every replicated share (empty when off).
  std::vector<replication::ShareResolution> replica_log;
};

class GossipRunner {
 public:
  GossipRunner(const data::Dataset& train, const data::Dataset& test,
               nn::ModelSpec model_spec, device::ModelDesc device_model,
               std::vector<device::PhoneModel> phones, device::NetworkType network,
               GossipConfig config);

  [[nodiscard]] GossipRunResult run(const data::Partition& partition);

 private:
  const data::Dataset& train_;
  const data::Dataset& test_;
  nn::ModelSpec model_spec_;
  device::ModelDesc device_model_;
  std::vector<device::PhoneModel> phones_;
  device::NetworkType network_;
  GossipConfig config_;
  ClientExecutor executor_;  // per-lane worker models + pool
};

}  // namespace fedsched::fl
