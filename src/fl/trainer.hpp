#pragma once
// Local SGD training over a slice of a dataset — what one FL client runs per
// round, and what the centralized baseline runs over the whole set.

#include <cstdint>
#include <span>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "nn/sgd.hpp"

namespace fedsched::fl {

struct EpochStats {
  double mean_loss = 0.0;
  std::size_t batches = 0;
  std::size_t samples = 0;
};

/// One epoch of mini-batch SGD over the rows of `ds` selected by `indices`
/// (shuffled in place per epoch). Returns the mean training loss.
EpochStats train_epoch(nn::Model& model, nn::Sgd& sgd, const data::Dataset& ds,
                       std::span<const std::size_t> indices, std::size_t batch_size,
                       common::Rng& rng);

/// Epochs of centralized training over the full dataset; returns final-epoch
/// stats.
EpochStats train_centralized(nn::Model& model, nn::Sgd& sgd, const data::Dataset& ds,
                             std::size_t epochs, std::size_t batch_size,
                             common::Rng& rng);

}  // namespace fedsched::fl
