#pragma once
// Deterministic fault injection for the FL runners.
//
// Battery-powered clients fail: apps crash mid-round, batteries die, radios
// stall, uploads drop and need retries. FaultInjector turns those hazards
// into *deterministic* per-(round, client) decisions: every draw comes from
// an Rng forked by a pure function of (round, client), never from a shared
// stream, so the schedule of failures is identical at every `parallelism`
// width and bit-for-bit reproducible across runs — the determinism contract
// (docs/API.md) extends to faulty fleets.
//
// Two invariants the runners rely on:
//   1. With FaultConfig::enabled == false, evaluate() returns the runner's
//      own fault-free elapsed time (RoundTimings::baseline_s) untouched, so
//      a disabled injector is bit-identical to no injector at all.
//   2. With enabled == true but no hazard triggered for a (round, client),
//      the baseline is returned as well — enabling faults with zero
//      probabilities changes nothing, bit for bit.
//
// Simulated-time accounting: a transient upload failure charges the failed
// upload plus an exponential backoff wait to the client's clock; a crash
// burns download + compute but never uploads; a stalled link multiplies
// every transfer by `stall_factor`.

#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/rng.hpp"
#include "device/model_desc.hpp"
#include "device/network.hpp"
#include "device/spec.hpp"

namespace fedsched::fl {

struct FaultConfig {
  /// Master switch. Off (default) = every runner is bit-identical to a
  /// build without the fault subsystem.
  bool enabled = false;

  /// P[client crashes before upload] per (round, client).
  double dropout_prob = 0.0;
  /// P[link stalls for the whole round] per (round, client).
  double stall_prob = 0.0;
  /// Multiplicative comm slowdown while stalled (>= 1).
  double stall_factor = 4.0;
  /// P[one upload attempt fails transiently]; retried with backoff.
  double transient_prob = 0.0;
  /// Re-upload attempts after the first failed one.
  std::size_t max_retries = 2;
  /// Wait before retry i (1-based) is backoff_base_s * 2^(i-1) simulated
  /// seconds, charged to the client's round time.
  double backoff_base_s = 2.0;

  /// Track a per-client battery; the device dies (permanently drops out)
  /// once state of charge falls to battery_floor_soc.
  bool battery_enabled = false;
  double battery_floor_soc = 0.05;
  /// Initial state of charge drawn uniformly per client from this range.
  double initial_soc_min = 1.0;
  double initial_soc_max = 1.0;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCrash,             // dropout before upload
  kBatteryDead,       // battery hit the floor (permanent)
  kRetriesExhausted,  // transient failures ate all retries
  kDeadlineMiss,      // finished, but after the round deadline
  kFaultKindCount,    // sentinel — keep last; sizes per-kind arrays
};

/// Number of real FaultKind values (the sentinel excluded). Size any
/// per-kind array from this so growing the enum cannot index out of bounds.
inline constexpr std::size_t kFaultKindCount =
    static_cast<std::size_t>(FaultKind::kFaultKindCount);

[[nodiscard]] const char* fault_name(FaultKind kind) noexcept;

/// Fault-free timing components of one client round. `baseline_s` is the
/// elapsed time exactly as the runner composes it (download + compute +
/// upload in the runner's own association) so the no-fault path reproduces
/// it bit for bit; the components let the injector recompose under stalls
/// and retries.
struct RoundTimings {
  double baseline_s = 0.0;
  double download_s = 0.0;  // all downloads of the round (gossip: degree x)
  double compute_s = 0.0;
  double upload_s = 0.0;    // one upload attempt
};

struct FaultOutcome {
  FaultKind kind = FaultKind::kNone;
  bool completed = true;
  /// Busy simulated seconds, including failed attempts and backoff waits.
  double elapsed_s = 0.0;
  std::size_t retries = 0;
  /// Comm multiplier applied this round (stall_factor when stalled, else 1).
  double comm_scale = 1.0;
};

class FaultInjector {
 public:
  /// Seeded from the run seed; validates the config.
  FaultInjector(FaultConfig config, std::uint64_t run_seed);

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] bool battery_enabled() const noexcept {
    return config_.enabled && config_.battery_enabled;
  }

  /// Initial state of charge for a client; pure function of (seed, client).
  [[nodiscard]] double initial_soc(std::size_t client) const;

  /// Fold the hazards into a fault-free round timing and apply the round
  /// deadline. Pure function of its arguments — safe from any lane. The
  /// async runner passes its per-client trip counter as `round`.
  [[nodiscard]] FaultOutcome evaluate(std::size_t round, std::size_t client,
                                      const RoundTimings& timings,
                                      double deadline_s) const;

 private:
  FaultConfig config_;
  common::Rng fault_base_;  // never advanced; forked per (round, client)
  common::Rng soc_base_;    // never advanced; forked per client
};

/// Energy (Wh) a client's battery is charged for one round: full-power draw
/// for the computed duration plus radio energy scaled by the stall factor.
/// Deliberately simpler than device::training_energy_wh (which integrates a
/// cold-start thermal trajectory) so it can price the *actual* simulated
/// duration of a round mid-run.
[[nodiscard]] double round_energy_wh(const device::DeviceSpec& spec,
                                     const device::ModelDesc& model,
                                     double compute_s, device::NetworkType network,
                                     double comm_scale);

/// +infinity: the default "no deadline" sentinel for runner configs.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

}  // namespace fedsched::fl
