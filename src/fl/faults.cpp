#include "fl/faults.hpp"

#include <stdexcept>

#include "device/battery.hpp"

namespace fedsched::fl {

namespace {

void check_prob(double p, const char* name) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

void FaultConfig::validate() const {
  check_prob(dropout_prob, "dropout_prob");
  check_prob(stall_prob, "stall_prob");
  check_prob(transient_prob, "transient_prob");
  check_prob(battery_floor_soc, "battery_floor_soc");
  check_prob(initial_soc_min, "initial_soc_min");
  check_prob(initial_soc_max, "initial_soc_max");
  if (stall_factor < 1.0) {
    throw std::invalid_argument("FaultConfig: stall_factor must be >= 1");
  }
  if (backoff_base_s < 0.0) {
    throw std::invalid_argument("FaultConfig: backoff_base_s must be >= 0");
  }
  if (initial_soc_min > initial_soc_max) {
    throw std::invalid_argument("FaultConfig: initial_soc_min > initial_soc_max");
  }
  if (max_retries > 62) {
    throw std::invalid_argument("FaultConfig: max_retries too large (backoff overflow)");
  }
}

const char* fault_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "ok";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kBatteryDead: return "battery";
    case FaultKind::kRetriesExhausted: return "retries";
    case FaultKind::kDeadlineMiss: return "deadline";
    case FaultKind::kFaultKindCount: break;  // sentinel, not a real kind
  }
  return "?";
}

FaultInjector::FaultInjector(FaultConfig config, std::uint64_t run_seed)
    : config_(config),
      fault_base_(run_seed ^ 0xFA171FA171FA171FULL),
      soc_base_(run_seed ^ 0x50C50C50C50C50CULL) {
  config_.validate();
}

double FaultInjector::initial_soc(std::size_t client) const {
  if (!battery_enabled()) return 1.0;
  common::Rng stream = soc_base_.fork(client);
  return stream.uniform(config_.initial_soc_min, config_.initial_soc_max);
}

FaultOutcome FaultInjector::evaluate(std::size_t round, std::size_t client,
                                     const RoundTimings& timings,
                                     double deadline_s) const {
  FaultOutcome out;
  if (!config_.enabled) {
    out.elapsed_s = timings.baseline_s;
    if (out.elapsed_s > deadline_s) {
      out.completed = false;
      out.kind = FaultKind::kDeadlineMiss;
    }
    return out;
  }

  // One private stream per (round, client); the draw order below is part of
  // the fault model's definition (crash, stall, then upload attempts).
  common::Rng stream = fault_base_.fork(round).fork(client);
  const bool crashed = stream.bernoulli(config_.dropout_prob);
  const bool stalled = stream.bernoulli(config_.stall_prob);
  const double scale = stalled ? config_.stall_factor : 1.0;
  out.comm_scale = scale;

  if (crashed) {
    out.kind = FaultKind::kCrash;
    out.completed = false;
    out.elapsed_s = scale * timings.download_s + timings.compute_s;
    return out;
  }

  bool uploaded = false;
  double extra_s = 0.0;  // retry uploads + backoff waits beyond the baseline
  for (std::size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      extra_s += config_.backoff_base_s *
                 static_cast<double>(std::uint64_t{1} << (attempt - 1));
      extra_s += scale * timings.upload_s;
      ++out.retries;
    }
    if (!stream.bernoulli(config_.transient_prob)) {
      uploaded = true;
      break;
    }
  }

  if (!stalled && out.retries == 0 && uploaded) {
    // Nothing triggered: return the runner's own composition so enabling
    // faults with zero probabilities is bit-identical to disabling them.
    out.elapsed_s = timings.baseline_s;
  } else {
    out.elapsed_s = scale * timings.download_s + timings.compute_s +
                    scale * timings.upload_s + extra_s;
  }

  if (!uploaded) {
    out.kind = FaultKind::kRetriesExhausted;
    out.completed = false;
    return out;
  }
  if (out.elapsed_s > deadline_s) {
    out.kind = FaultKind::kDeadlineMiss;
    out.completed = false;
  }
  return out;
}

double round_energy_wh(const device::DeviceSpec& spec, const device::ModelDesc& model,
                       double compute_s, device::NetworkType network,
                       double comm_scale) {
  const double compute_wh =
      spec.thermal.peak_power * model.power_intensity * compute_s / 3600.0;
  return compute_wh + comm_scale * comm_energy_wh(network, model);
}

}  // namespace fedsched::fl
