#include "fl/gossip_runner.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "device/battery.hpp"
#include "fl/report.hpp"
#include "fl/trainer.hpp"

namespace fedsched::fl {

const char* topology_name(Topology topology) noexcept {
  switch (topology) {
    case Topology::kRing: return "ring";
    case Topology::kComplete: return "complete";
  }
  return "?";
}

std::vector<std::vector<std::size_t>> build_topology(Topology topology,
                                                     std::size_t n) {
  if (n == 0) throw std::invalid_argument("build_topology: no clients");
  std::vector<std::vector<std::size_t>> neighbors(n);
  switch (topology) {
    case Topology::kRing:
      for (std::size_t u = 0; u < n; ++u) {
        if (n == 1) break;
        const std::size_t prev = (u + n - 1) % n;
        const std::size_t next = (u + 1) % n;
        neighbors[u].push_back(prev);
        if (next != prev) neighbors[u].push_back(next);
      }
      break;
    case Topology::kComplete:
      for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = 0; v < n; ++v) {
          if (v != u) neighbors[u].push_back(v);
        }
      }
      break;
  }
  return neighbors;
}

GossipRunner::GossipRunner(const data::Dataset& train, const data::Dataset& test,
                           nn::ModelSpec model_spec, device::ModelDesc device_model,
                           std::vector<device::PhoneModel> phones,
                           device::NetworkType network, GossipConfig config)
    : train_(train),
      test_(test),
      model_spec_(model_spec),
      device_model_(std::move(device_model)),
      phones_(std::move(phones)),
      network_(network),
      config_(config),
      executor_(model_spec, config.parallelism) {
  if (phones_.empty()) throw std::invalid_argument("GossipRunner: no devices");
}

GossipRunResult GossipRunner::run(const data::Partition& partition) {
  const std::size_t n = phones_.size();
  if (partition.users() != n) {
    throw std::invalid_argument("GossipRunner::run: partition/device count mismatch");
  }
  bool any_data = false;
  for (const auto& share : partition.user_indices) any_data |= !share.empty();
  if (!any_data) throw std::invalid_argument("GossipRunner::run: empty partition");

  // Self-healing (shared membership view): health folds each round's
  // verdicts; the replanner redistributes shares away from drifted/dead
  // peers. Off policy = bit-identical to the static-plan behaviour.
  const bool recovery = config_.reschedule.enabled();
  const bool hedging = config_.replicate.enabled();
  std::optional<health::HealthTracker> tracker;
  std::optional<health::Replanner> replanner;
  std::optional<replication::ReplicationPlanner> hedger;
  if (recovery || hedging) tracker.emplace(config_.reschedule.health, n);
  if (recovery) replanner.emplace(config_.reschedule, n);
  if (hedging) hedger.emplace(config_.replicate, n);
  data::Partition working = partition;

  const auto neighbors = build_topology(config_.topology, n);
  std::vector<device::Device> devices;
  devices.reserve(n);
  for (device::PhoneModel phone : phones_) devices.emplace_back(phone, network_);
  std::vector<nn::Sgd> optimizers(n, nn::Sgd(config_.sgd));
  common::Rng rng(config_.seed ^ 0x5151515151ULL);

  const FaultInjector injector(config_.faults, config_.seed);
  const double deadline = config_.deadline_s;
  std::vector<device::Battery> batteries;
  if (injector.battery_enabled()) {
    batteries.reserve(n);
    for (std::size_t u = 0; u < n; ++u) {
      batteries.emplace_back(device::battery_of(phones_[u]), injector.initial_soc(u));
    }
  }

  // Every client starts from the same initialization (a shared seed model,
  // as decentralized training assumes).
  common::Rng init_rng(config_.seed);
  nn::Model seed_model = nn::build_model(model_spec_, init_rng);
  std::vector<std::vector<float>> params(n, seed_model.flat_params());

  GossipRunResult result;
  std::vector<double> client_loss(n, 0.0);
  std::vector<char> has_loss(n, 0);
  std::vector<common::Rng> client_rngs(n);
  std::vector<FaultOutcome> outcomes(n);
  std::vector<RoundTimings> trip_timings(n);

  // Observability: emitted only from the serial sections, in client order
  // (see FedAvgRunner::run for the width-invariance argument).
  obs::TraceWriter null_trace;
  obs::TraceWriter& trace = config_.trace ? *config_.trace : null_trace;
  trace_run_start(trace, "gossip", n, config_.rounds, config_.seed,
                  config_.deadline_s, config_.faults.enabled);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    RoundRecord record;
    record.round = round;
    record.client_seconds.assign(n, 0.0);
    trace_round_start(trace, round);

    // Hedge plan (see FedAvgRunner::run): decided serially before any lane
    // runs. Gossip trains one epoch per round.
    replication::RoundPlan hedge_plan;
    if (hedging) {
      std::vector<std::size_t> share_sizes(n);
      for (std::size_t u = 0; u < n; ++u) {
        share_sizes[u] = working.user_indices[u].size();
      }
      hedge_plan = hedger->plan(*tracker, share_sizes, 1);
      record.replicas_assigned = hedge_plan.assignments.size();
      if (!hedge_plan.empty()) trace_replication_plan(trace, round, hedge_plan);
    }

    for (std::size_t u = 0; u < n; ++u) client_rngs[u] = rng.fork(round * n + u);
    std::fill(has_loss.begin(), has_loss.end(), 0);
    std::fill(outcomes.begin(), outcomes.end(), FaultOutcome{});
    std::fill(trip_timings.begin(), trip_timings.end(), RoundTimings{});

    // 1. Local training on each client's own parameters — clients only
    // write their own slots, so they run concurrently.
    std::vector<std::vector<float>> trained = params;
    executor_.for_each_client(n, [&](std::size_t u, nn::Model& worker) {
      const auto& share = working.user_indices[u];
      if (share.empty()) return;

      if (injector.battery_enabled() &&
          batteries[u].dead(config_.faults.battery_floor_soc)) {
        outcomes[u] = {.kind = FaultKind::kBatteryDead, .completed = false};
        return;
      }

      // Time: one epoch + one upload + `degree` neighbor downloads.
      const auto& link = device::link_of(network_);
      RoundTimings timings;
      timings.upload_s = device::upload_seconds(link, device_model_.size_mb);
      timings.download_s = static_cast<double>(neighbors[u].size()) *
                           device::download_seconds(link, device_model_.size_mb);
      timings.compute_s = devices[u].train(device_model_, share.size());
      timings.baseline_s = timings.compute_s;
      timings.baseline_s += timings.upload_s;
      timings.baseline_s += timings.download_s;
      trip_timings[u] = timings;

      FaultOutcome outcome = injector.evaluate(round, u, timings, deadline);
      if (injector.battery_enabled()) {
        batteries[u].drain(round_energy_wh(device::spec_of(phones_[u]), device_model_,
                                           timings.compute_s, network_,
                                           outcome.comm_scale));
        if (batteries[u].dead(config_.faults.battery_floor_soc)) {
          outcome.completed = false;
          outcome.kind = FaultKind::kBatteryDead;
        }
      }
      record.client_seconds[u] = outcome.elapsed_s;
      outcomes[u] = outcome;
      if (!outcome.completed) return;  // update lost; keeps pre-round params

      worker.set_flat_params(params[u]);
      const auto stats = train_epoch(worker, optimizers[u], train_, share,
                                     config_.batch_size, client_rngs[u]);
      client_loss[u] = stats.mean_loss;
      has_loss[u] = 1;
      trained[u] = worker.flat_params();
    });

    // Speculative copies: the host re-trains the owner's share after its own
    // epoch (extra compute on its clock, extra upload, extra battery drain;
    // the host's own fault verdict applies). Serial, plan order — see
    // FedAvgRunner::run for the width-invariance argument.
    std::vector<replication::ReplicaOutcome> replica_outcomes;
    std::vector<replication::ShareResolution> resolutions;
    std::vector<char> rescued(n, 0);
    if (!hedge_plan.empty()) {
      for (const replication::ReplicaAssignment& a : hedge_plan.assignments) {
        replication::ReplicaOutcome ro;
        ro.owner = a.owner;
        ro.host = a.host;
        const FaultOutcome& host_out = outcomes[a.host];
        if (!host_out.completed) {
          ro.finish_s = host_out.elapsed_s;
          ro.kind = host_out.kind;
        } else {
          const double copy_compute = devices[a.host].train(
              device_model_, working.user_indices[a.owner].size());
          ro.finish_s = host_out.elapsed_s + copy_compute +
                        trip_timings[a.host].upload_s * host_out.comm_scale;
          ro.completed = true;
          if (injector.battery_enabled()) {
            batteries[a.host].drain(
                round_energy_wh(device::spec_of(phones_[a.host]), device_model_,
                                copy_compute, network_, host_out.comm_scale));
            if (batteries[a.host].dead(config_.faults.battery_floor_soc)) {
              ro.completed = false;
              ro.kind = FaultKind::kBatteryDead;
            }
          }
          if (ro.completed && std::isfinite(deadline) && ro.finish_s > deadline) {
            ro.completed = false;
            ro.kind = FaultKind::kDeadlineMiss;
          }
        }
        replica_outcomes.push_back(ro);
      }
      for (std::size_t u = 0; u < n; ++u) {
        std::vector<replication::ReplicaOutcome> mine;
        for (const auto& ro : replica_outcomes) {
          if (ro.owner == u) mine.push_back(ro);
        }
        if (mine.empty()) continue;
        const bool primary_ok =
            outcomes[u].completed && !working.user_indices[u].empty();
        replication::ShareResolution res = replication::resolve_first_finisher(
            u, primary_ok, outcomes[u].elapsed_s, mine);
        if (res.rescued) rescued[u] = 1;
        if (res.arrived && res.winner != u) ++record.replicas_won;
        record.shares_rescued += res.rescued;
        resolutions.push_back(res);
      }
    }

    // Rescue pass: re-derive the exact update the dropped primary would have
    // produced (same pre-round params, same RNG fork, same optimizer — the
    // primary's lane returned before touching either), so the fleet mixes
    // the saved share as if the owner had been online.
    if (record.shares_rescued > 0) {
      executor_.for_each_client(n, [&](std::size_t u, nn::Model& worker) {
        if (!rescued[u]) return;
        const auto& share = working.user_indices[u];
        worker.set_flat_params(params[u]);
        const auto stats = train_epoch(worker, optimizers[u], train_, share,
                                       config_.batch_size, client_rngs[u]);
        client_loss[u] = stats.mean_loss;
        has_loss[u] = 1;
        trained[u] = worker.flat_params();
      });
    }

    double loss_sum = 0.0;
    std::size_t loss_users = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (!has_loss[u]) continue;
      loss_sum += client_loss[u];
      ++loss_users;
    }

    if (trace.enabled()) {
      for (std::size_t u = 0; u < n; ++u) {
        if (working.user_indices[u].empty()) continue;
        trace_client_trip(trace, round, u, trip_timings[u], outcomes[u]);
        const device::TracePoint point{
            .time_s = devices[u].clock_s(),
            .temp_c = devices[u].temperature_c(),
            .speed = devices[u].speed_factor(),
            .freq_ghz = devices[u].speed_factor() *
                        device::max_cpu_ghz(devices[u].spec())};
        trace_device_snapshot(trace, round, u, point,
                              injector.battery_enabled()
                                  ? batteries[u].state_of_charge()
                                  : -1.0);
      }
      for (const replication::ShareResolution& res : resolutions) {
        trace_replica_result(trace, round, res);
      }
    }

    // Fault bookkeeping: `online[u]` = the client exchanged models this
    // round. Dataless clients are online (they mix neighbors but weigh 0);
    // dropped participants are not — neighbors renormalize without them.
    record.client_faults.resize(n);
    std::vector<char> online(n, 1);
    for (std::size_t u = 0; u < n; ++u) {
      record.client_faults[u] = outcomes[u].kind;
      record.retry_count += outcomes[u].retries;
      if (working.user_indices[u].empty()) continue;
      if (has_loss[u]) {
        ++record.completed_clients;
      } else {
        ++record.dropped_clients;
        online[u] = 0;
      }
    }
    record.skipped = record.completed_clients == 0;

    // 2. Gossip averaging over closed neighborhoods, weighted by data size.
    // Every mixed[u] reads the frozen `trained` snapshot and sums its
    // neighborhood in fixed order, so the mixing parallelizes per client.
    std::vector<std::vector<float>> mixed(n);
    executor_.for_each_index(n, [&](std::size_t u) {
      if (!online[u]) {
        mixed[u] = params[u];  // offline: local training and exchanges lost
        return;
      }
      double total_weight = static_cast<double>(working.user_indices[u].size());
      std::vector<float> acc(trained[u].size(), 0.0f);
      auto accumulate = [&](std::size_t v, double w) {
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] += static_cast<float>(w) * trained[v][i];
        }
      };
      accumulate(u, static_cast<double>(working.user_indices[u].size()));
      for (std::size_t v : neighbors[u]) {
        if (!online[v]) continue;  // dropped neighbor never sent its model
        const double w = static_cast<double>(working.user_indices[v].size());
        total_weight += w;
        accumulate(v, w);
      }
      if (total_weight <= 0.0) {
        mixed[u] = trained[u];  // isolated, dataless client keeps its params
        return;
      }
      for (float& x : acc) x /= static_cast<float>(total_weight);
      mixed[u] = std::move(acc);
    });
    params = std::move(mixed);

    // A replicated share gates at its winning arrival; losing copies never
    // hold the round (see FedAvgRunner::run).
    std::vector<double> gates = record.client_seconds;
    for (const replication::ShareResolution& res : resolutions) {
      if (res.arrived) gates[res.owner] = res.finish_s;
    }
    const double busiest = *std::max_element(gates.begin(), gates.end());
    record.round_seconds = (record.dropped_clients > 0 && std::isfinite(deadline))
                               ? deadline
                               : busiest;
    record.mean_train_loss = loss_users ? loss_sum / static_cast<double>(loss_users) : 0.0;
    result.total_seconds += record.round_seconds;
    record.cumulative_seconds = result.total_seconds;
    trace_round_end(trace, record);

    // Self-healing: same serial fold + replan as FedAvgRunner::run (which
    // documents the ordering); gossip has one local epoch per round.
    if (recovery || hedging) {
      std::vector<health::HealthTracker::Observation> observed(n);
      for (std::size_t u = 0; u < n; ++u) {
        const auto& share = working.user_indices[u];
        health::HealthTracker::Observation& o = observed[u];
        o.participated = !share.empty();
        const sched::UserProfile* prof = nullptr;
        if (u < config_.reschedule.users.size()) {
          prof = &config_.reschedule.users[u];
        } else if (u < config_.replicate.users.size()) {
          prof = &config_.replicate.users[u];
        }
        o.predicted_s = prof ? prof->epoch_seconds(share.size()) : 0.0;
        o.measured_s = outcomes[u].elapsed_s;
        o.fault = outcomes[u].kind;
        // Health judges the primary's own trip; a rescue doesn't absolve it.
        o.completed = o.participated && outcomes[u].completed;
        o.retries = outcomes[u].retries;
        o.soc = injector.battery_enabled() ? batteries[u].state_of_charge() : -1.0;
      }
      tracker->observe_round(observed);
      trace_health(trace, round, *tracker);

      if (recovery && round + 1 < config_.rounds && tracker->replan_due(round)) {
        const health::ReplanOutcome outcome = replanner->replan(*tracker, *tracker);
        if (outcome.replanned) {
          record.rescheduled = true;
          record.moved_shards = outcome.moved_shards;
          common::Rng repart_rng =
              common::Rng(config_.seed ^ 0xA11C0DEDULL).fork(round);
          working = replanner->materialize(train_, working.total(), repart_rng);
          trace_reschedule(trace, round, config_.reschedule.policy, outcome);
        }
        tracker->note_replan(round);
      }
    }
    result.replica_log.insert(result.replica_log.end(), resolutions.begin(),
                              resolutions.end());
    result.rounds.push_back(std::move(record));
  }

  if (recovery || hedging) result.client_health = tracker->all();

  // Final evaluation of every client's model + consensus gap. Each client's
  // accuracy and pairwise-gap row is independent; the mean and max reduce
  // serially in client order.
  result.client_accuracy.resize(n);
  executor_.for_each_client(n, [&](std::size_t u, nn::Model& worker) {
    worker.set_flat_params(params[u]);
    result.client_accuracy[u] = worker.accuracy(test_.images(), test_.labels());
  });
  double acc_sum = 0.0;
  for (std::size_t u = 0; u < n; ++u) acc_sum += result.client_accuracy[u];
  result.mean_accuracy = acc_sum / static_cast<double>(n);

  std::vector<double> row_gap(n, 0.0);
  executor_.for_each_index(n, [&](std::size_t u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      double sq = 0.0;
      for (std::size_t i = 0; i < params[u].size(); ++i) {
        const double diff = params[u][i] - params[v][i];
        sq += diff * diff;
      }
      row_gap[u] = std::max(row_gap[u], std::sqrt(sq));
    }
  });
  for (double gap : row_gap) result.consensus_gap = std::max(result.consensus_gap, gap);
  trace_run_end(trace, result.mean_accuracy, result.total_seconds,
                result.rounds.size());
  trace.flush();
  if (config_.metrics) record_run_metrics(*config_.metrics, result);
  return result;
}

}  // namespace fedsched::fl
