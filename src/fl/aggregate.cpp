#include "fl/aggregate.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedsched::fl {

void survivor_weighted_average(std::vector<float>& aggregate,
                               const std::vector<std::vector<float>>& locals,
                               const std::vector<char>& trained,
                               const std::vector<std::size_t>& share_sizes,
                               std::size_t survivor_samples,
                               ClientExecutor& executor) {
  if (survivor_samples == 0) {
    throw std::invalid_argument("survivor_weighted_average: zero survivor samples");
  }
  const std::size_t n_users = trained.size();
  std::fill(aggregate.begin(), aggregate.end(), 0.0f);
  executor.for_each_block(aggregate.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = 0; u < n_users; ++u) {
      if (!trained[u]) continue;
      const float weight = static_cast<float>(share_sizes[u]) /
                           static_cast<float>(survivor_samples);
      const float* local = locals[u].data();
      for (std::size_t i = lo; i < hi; ++i) aggregate[i] += weight * local[i];
    }
  });
}

std::vector<double> flat_weighted_sum(std::span<const std::uint32_t> members,
                                      std::span<const std::uint32_t> weights,
                                      std::size_t dim, const UpdateFn& update_into) {
  if (members.size() != weights.size()) {
    throw std::invalid_argument("flat_weighted_sum: misaligned members/weights");
  }
  std::vector<double> result(dim, 0.0);
  std::vector<double> buf(dim);
  for (std::size_t m = 0; m < members.size(); ++m) {
    update_into(members[m], buf);
    const double w = static_cast<double>(weights[m]);
    for (std::size_t i = 0; i < dim; ++i) result[i] += w * buf[i];
  }
  return result;
}

std::vector<double> tree_weighted_sum(std::span<const std::uint32_t> members,
                                      std::span<const std::uint32_t> weights,
                                      std::size_t dim, const UpdateFn& update_into,
                                      std::size_t group_size,
                                      common::ThreadPool* pool) {
  if (members.size() != weights.size()) {
    throw std::invalid_argument("tree_weighted_sum: misaligned members/weights");
  }
  std::vector<double> result(dim, 0.0);
  if (members.empty() || dim == 0) return result;

  const std::size_t groups =
      common::ThreadPool::grain_chunks(members.size(), group_size);
  std::vector<std::vector<double>> partials(groups);
  const auto accumulate_group = [&](std::size_t g, std::size_t lo, std::size_t hi) {
    auto& partial = partials[g];
    partial.assign(dim, 0.0);
    std::vector<double> buf(dim);
    for (std::size_t m = lo; m < hi; ++m) {
      update_into(members[m], buf);
      const double w = static_cast<double>(weights[m]);
      for (std::size_t i = 0; i < dim; ++i) partial[i] += w * buf[i];
    }
  };

  if (pool != nullptr && groups > 1) {
    pool->parallel_for_chunks(0, members.size(), groups, accumulate_group);
  } else {
    for (std::size_t g = 0; g < groups; ++g) {
      const auto [lo, hi] =
          common::ThreadPool::chunk_bounds(0, members.size(), groups, g);
      accumulate_group(g, lo, hi);
    }
  }

  // Combine shard-group partials in group order on one thread: the only
  // cross-group arithmetic, and it never depends on the pool.
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = 0; i < dim; ++i) result[i] += partials[g][i];
  }
  return result;
}

}  // namespace fedsched::fl
