#pragma once
// Client-parallel execution engine shared by the FL runners.
//
// The simulated fleet is embarrassingly parallel within a round: every
// client trains from its own snapshot of the global parameters against its
// own optimizer, device and RNG stream. ClientExecutor owns one worker model
// per lane (pool thread), so concurrent clients never share mutable training
// state, and splits clients into the deterministic contiguous chunks of
// ThreadPool::parallel_for_chunks.
//
// Determinism contract: runners write only client-indexed state inside the
// parallel region and reduce in fixed client order afterwards, so a run with
// any `parallelism` width is bit-for-bit identical to the serial run
// (enforced by tests/fl/test_parallel_determinism.cpp).
//
// Width semantics (the FlConfig::parallelism knob): 0 selects the hardware
// concurrency, 1 the legacy serial path (no pool, no extra threads), k >= 2
// a pool of k threads.

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/models.hpp"

namespace fedsched::fl {

/// Resolve the config knob to a concrete lane count (0 -> hardware).
[[nodiscard]] std::size_t resolve_parallelism(std::size_t parallelism) noexcept;

class ClientExecutor {
 public:
  /// Builds `resolve_parallelism(parallelism)` worker models of the given
  /// topology. Worker weights are scratch — every use overwrites them via
  /// set_flat_params before training.
  ClientExecutor(const nn::ModelSpec& spec, std::size_t parallelism);

  [[nodiscard]] std::size_t width() const noexcept { return workers_.size(); }

  /// Run fn(client, worker) for every client in [0, n_clients). The worker
  /// model is exclusive to the executing lane for the duration of the call;
  /// fn must only write client-indexed state.
  void for_each_client(std::size_t n_clients,
                       const std::function<void(std::size_t, nn::Model&)>& fn);

  /// Run fn(i) for i in [0, n) without a worker model (e.g. mixing steps
  /// whose per-index output is independent of chunking).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Block-wise variant for ordered reductions: fn(lo, hi) over [0, n).
  void for_each_block(std::size_t n,
                      const std::function<void(std::size_t, std::size_t)>& fn);

  /// One-off task with an exclusive worker — the async runner's unit of
  /// work. Serial executors run the task inline (the returned future is
  /// already ready); parallel executors run it on the pool with a worker
  /// checked out from the free list.
  std::future<void> submit(std::function<void(nn::Model&)> task);

 private:
  [[nodiscard]] nn::Model* acquire_worker();
  void release_worker(nn::Model* worker) noexcept;

  std::vector<nn::Model> workers_;
  std::vector<nn::Model*> free_workers_;
  std::mutex free_mutex_;
  std::unique_ptr<common::ThreadPool> pool_;  // null when width() == 1
};

}  // namespace fedsched::fl
