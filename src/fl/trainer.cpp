#include "fl/trainer.hpp"

#include <numeric>
#include <vector>

#include "nn/loss.hpp"

namespace fedsched::fl {

EpochStats train_epoch(nn::Model& model, nn::Sgd& sgd, const data::Dataset& ds,
                       std::span<const std::size_t> indices, std::size_t batch_size,
                       common::Rng& rng) {
  EpochStats stats;
  if (indices.empty()) return stats;
  std::vector<std::size_t> order(indices.begin(), indices.end());
  rng.shuffle(order);

  tensor::Tensor batch;
  std::vector<std::uint16_t> labels;
  double loss_sum = 0.0;
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, order.size() - start);
    ds.fill_batch(std::span(order).subspan(start, count), batch, labels);
    const tensor::Tensor logits = model.forward(batch, /*train=*/true);
    auto result = nn::softmax_cross_entropy(logits, labels);
    model.backward(result.grad);
    sgd.step(model);
    loss_sum += result.loss;
    ++stats.batches;
    stats.samples += count;
  }
  stats.mean_loss = loss_sum / static_cast<double>(stats.batches);
  return stats;
}

EpochStats train_centralized(nn::Model& model, nn::Sgd& sgd, const data::Dataset& ds,
                             std::size_t epochs, std::size_t batch_size,
                             common::Rng& rng) {
  std::vector<std::size_t> all(ds.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  EpochStats stats;
  for (std::size_t e = 0; e < epochs; ++e) {
    stats = train_epoch(model, sgd, ds, all, batch_size, rng);
  }
  return stats;
}

}  // namespace fedsched::fl
