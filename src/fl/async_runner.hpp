#pragma once
// Asynchronous FL baseline (staleness-damped mixing).
//
// Section II-B of the paper argues against asynchronous updates on mobile
// heterogeneity: fast clients stop waiting for stragglers, but stale
// gradients dilute the global model and amortize the wall-clock savings.
// This runner implements that alternative so the claim is testable
// (bench/ablation_sync_async): every client loops
// {download, train one local epoch, upload} on its own simulated clock; the
// server merges each arriving update immediately with a mixing weight damped
// by the update's staleness (how many merges happened since the client
// pulled its base model), in the spirit of stale-synchronous / async-SGD
// servers [11], [12].

#include "data/partition.hpp"
#include "fl/runner.hpp"

namespace fedsched::fl {

struct AsyncConfig {
  /// Stop once this much simulated time has elapsed.
  double horizon_seconds = 1000.0;
  std::size_t batch_size = 20;
  nn::SgdConfig sgd{.learning_rate = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f};
  /// Mixing weight for a fresh (staleness 0) update.
  double base_mix = 0.5;
  /// Weight decays as base_mix / (1 + staleness)^damping.
  double damping = 1.0;
  std::uint64_t seed = 1;
  /// Host threads training in-flight clients concurrently: 0 = hardware
  /// concurrency, 1 = serial legacy path. Results are identical for every
  /// value — the merge order is fixed by the simulated timeline.
  std::size_t parallelism = 0;
  /// Per-update deadline (simulated seconds): a round trip still in flight
  /// after this long is abandoned and the client re-pulls. Infinity = none.
  double deadline_s = kNoDeadline;
  /// Fault injection; failed trips burn simulated time but never merge.
  FaultConfig faults;
  /// Observability sinks (non-owning; may be null) — see FlConfig.
  obs::TraceWriter* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Self-healing for the async loop: per-trip health tracking with
  /// probation served as simulated-time backoff waits before the next pull,
  /// and permanent exclusion of blacklisted/dead clients. There are no
  /// rounds, so no shard replanning — see docs/API.md "Self-healing rounds".
  bool health_enabled = false;
  health::HealthConfig health;
  /// Speculative replication, async flavour ("hedge trips"): when a flagged
  /// at-risk client's trip fails, its share is queued and the next healthy
  /// host to come free runs one extra trip on that share before resuming its
  /// own loop. Enabling this implies per-trip health tracking (risk scores
  /// need it). Off = bit-identical to replication-free async runs.
  replication::ReplicationConfig replicate;
};

struct AsyncUpdateRecord {
  double time_s = 0.0;       // simulated arrival time
  std::size_t client = 0;    // the device that ran the trip (the host)
  std::size_t staleness = 0; // merges since the client pulled its base model
  double mix_weight = 0.0;
  /// Whose share the update trained: == client for ordinary trips, the
  /// hedged client for replica ("hedge") trips.
  std::size_t owner = 0;
};

struct AsyncRunResult {
  std::vector<AsyncUpdateRecord> updates;
  double final_accuracy = 0.0;
  double elapsed_seconds = 0.0;
  /// Fault bookkeeping: trips that burned simulated time but never merged,
  /// upload retries charged to client clocks, and permanent battery deaths.
  std::size_t dropped_updates = 0;
  std::size_t retry_count = 0;
  std::size_t battery_deaths = 0;
  /// Final per-client health state (empty when health tracking is off) and
  /// the total simulated seconds clients spent waiting out probations.
  std::vector<health::ClientHealth> client_health;
  double probation_wait_seconds = 0.0;
  /// Hedge-trip bookkeeping (zero when replication is off): replica trips
  /// launched and the subset that merged an update for the hedged share.
  std::size_t replica_trips = 0;
  std::size_t replica_merges = 0;

  [[nodiscard]] double mean_staleness() const;
  [[nodiscard]] std::size_t updates_from(std::size_t client) const;
};

class AsyncRunner {
 public:
  AsyncRunner(const data::Dataset& train, const data::Dataset& test,
              nn::ModelSpec model_spec, device::ModelDesc device_model,
              std::vector<device::PhoneModel> phones, device::NetworkType network,
              AsyncConfig config);

  [[nodiscard]] AsyncRunResult run(const data::Partition& partition);

 private:
  const data::Dataset& train_;
  const data::Dataset& test_;
  device::ModelDesc device_model_;
  std::vector<device::PhoneModel> phones_;
  device::NetworkType network_;
  AsyncConfig config_;
  nn::Model global_;
  ClientExecutor executor_;  // per-lane worker models + pool
};

}  // namespace fedsched::fl
