#pragma once
// Synchronous FedAvg on the simulated mobile testbed.
//
// Each round: the server pushes the global model to every participating
// client; clients run `local_epochs` of SGD on their local share (real
// gradient computation through src/nn); the server averages the returned
// parameters weighted by sample count. Wall-clock per round is the *maximum*
// over participants of download + simulated-device compute + upload —
// synchronous aggregation waits for the straggler, which is exactly the
// quantity the paper's schedulers minimize. Test accuracy comes from the
// actually-trained global model; time comes from the device simulators. The
// two are decoupled deliberately (the paper does the same: profiles for
// time, training for accuracy).
//
// Client training within a round runs in parallel on the host (see
// fl/parallel.hpp): per-client results land in client-indexed slots and
// reduce in fixed client order, so any `parallelism` width produces
// bit-identical results.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "device/device.hpp"
#include "fl/faults.hpp"
#include "fl/health/replanner.hpp"
#include "fl/parallel.hpp"
#include "fl/replication/replication.hpp"
#include "nn/models.hpp"
#include "nn/sgd.hpp"

namespace fedsched::obs {
class MetricsRegistry;
class TraceWriter;
}  // namespace fedsched::obs

namespace fedsched::fl {

/// Deterministic checkpoint/resume (fl/checkpoint). A checkpoint written
/// after round r captures the complete mutable round-loop state; resuming
/// from it finishes bit-identical to an uninterrupted run — including the
/// trace bytes, provided both runs use the same checkpoint cadence (the
/// `checkpoint` trace event is part of the stream). See docs/API.md
/// "Checkpoint format".
struct CheckpointConfig {
  /// Where to write checkpoints; empty disables saving.
  std::string path;
  /// Save after every N completed rounds (0 = only the halt checkpoint).
  std::size_t every_rounds = 0;
  /// Deterministic kill switch: write a checkpoint after this many completed
  /// rounds, then stop the run cleanly (RunResult::halted = true, no final
  /// evaluation). 0 = run to completion. For byte-identical traces the halt
  /// round must coincide with a cadence checkpoint.
  std::size_t halt_after_rounds = 0;
  /// Load this checkpoint before the first round; empty starts fresh.
  std::string resume_from;

  [[nodiscard]] bool save_enabled() const noexcept {
    return !path.empty() && (every_rounds > 0 || halt_after_rounds > 0);
  }
  /// A checkpoint is due after `completed` rounds.
  [[nodiscard]] bool due(std::size_t completed) const noexcept {
    if (!save_enabled() || completed == 0) return false;
    if (halt_after_rounds > 0 && completed == halt_after_rounds) return true;
    return every_rounds > 0 && completed % every_rounds == 0;
  }
};

struct FlConfig {
  std::size_t rounds = 10;
  std::size_t local_epochs = 1;
  std::size_t batch_size = 20;   // the paper's mobile batch size
  nn::SgdConfig sgd{.learning_rate = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f};
  std::uint64_t seed = 1;
  /// Evaluate test accuracy every round (slower) or only at the end.
  bool evaluate_each_round = false;
  /// Idle time between rounds (devices cool down), seconds of simulated time.
  double idle_between_rounds_s = 0.0;
  /// Host threads training clients concurrently: 0 = hardware concurrency,
  /// 1 = serial legacy path. Results are identical for every value (the
  /// determinism contract; see docs/API.md).
  std::size_t parallelism = 0;
  /// Round deadline (simulated seconds): the server aggregates whatever
  /// arrived by then and drops the rest. Infinity = wait for everyone.
  double deadline_s = kNoDeadline;
  /// Fault injection (crash / battery death / network stall / transient
  /// upload failures). Disabled by default — see docs/API.md "Fault model".
  FaultConfig faults;
  /// Structured observability sinks (non-owning; may be null). Traces carry
  /// simulated time only and are emitted from serial sections in fixed
  /// client order, so they are byte-identical at every `parallelism` width;
  /// a null/disabled sink leaves the run bit-identical to a build without
  /// tracing. See docs/API.md "Structured observability".
  obs::TraceWriter* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Self-healing: health tracking + online rescheduling (fl/health). An
  /// off policy reproduces the static-plan behaviour bit-for-bit — no
  /// health state, no extra trace events.
  health::ReschedulePlan reschedule;
  /// Speculative shard replication (fl/replication): hedge the shares of
  /// at-risk clients onto healthy fast hosts; the first finished copy wins.
  /// An off policy reproduces replication-free runs bit-for-bit — no extra
  /// trace events, no extra metrics. Works with or without `reschedule`
  /// (either way it reads risk from a HealthTracker fed by the round loop).
  replication::ReplicationConfig replicate;
  /// Deterministic checkpoint/resume (fl/checkpoint).
  CheckpointConfig checkpoint;
};

struct RoundRecord {
  std::size_t round = 0;
  double round_seconds = 0.0;        // makespan (deadline when clients dropped)
  double cumulative_seconds = 0.0;
  double mean_train_loss = 0.0;
  double test_accuracy = -1.0;       // -1 when not evaluated this round
  std::vector<double> client_seconds;
  /// Fault/deadline bookkeeping. Without faults every participant completes.
  std::size_t completed_clients = 0;
  std::size_t dropped_clients = 0;
  std::size_t retry_count = 0;
  /// True when zero clients survived: aggregation skipped, model unchanged.
  bool skipped = false;
  /// Per-client fault verdict this round (kNone for survivors and idle users).
  std::vector<FaultKind> client_faults;
  /// Online rescheduling: true when the replanner swapped the shard plan at
  /// the end of this round; moved_shards counts shards that changed owner.
  bool rescheduled = false;
  std::size_t moved_shards = 0;
  /// Speculative replication (zero everywhere when the policy is off):
  /// copies assigned this round, copies that were the first finisher of
  /// their share, and shares saved by a replica after the primary faulted.
  std::size_t replicas_assigned = 0;
  std::size_t replicas_won = 0;
  std::size_t shares_rescued = 0;
};

struct RunResult {
  std::vector<RoundRecord> rounds;
  double final_accuracy = 0.0;
  double total_seconds = 0.0;
  /// True when the run stopped at CheckpointConfig::halt_after_rounds: the
  /// checkpoint was written, no final evaluation ran (final_accuracy = 0).
  bool halted = false;
  /// Final per-client health state (empty when both rescheduling and
  /// replication are off).
  std::vector<health::ClientHealth> client_health;
  /// First-finisher verdict of every replicated share, in (round, owner)
  /// order (empty when replication is off).
  std::vector<replication::ShareResolution> replica_log;

  [[nodiscard]] double mean_round_seconds() const;
};

class FedAvgRunner {
 public:
  /// `phones[u]` powers user u; partition.user_indices[u] is its local data.
  FedAvgRunner(const data::Dataset& train, const data::Dataset& test,
               nn::ModelSpec model_spec, device::ModelDesc device_model,
               std::vector<device::PhoneModel> phones,
               device::NetworkType network, FlConfig config);

  /// Train to completion over the given partition.
  [[nodiscard]] RunResult run(const data::Partition& partition);

  /// The global model after the last run() (for inspection).
  [[nodiscard]] nn::Model& global_model() noexcept { return global_; }

 private:
  const data::Dataset& train_;
  const data::Dataset& test_;
  device::ModelDesc device_model_;
  std::vector<device::PhoneModel> phones_;
  device::NetworkType network_;
  FlConfig config_;
  nn::Model global_;
  ClientExecutor executor_;  // per-lane worker models + pool
};

}  // namespace fedsched::fl
