#include "fl/parallel.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace fedsched::fl {

std::size_t resolve_parallelism(std::size_t parallelism) noexcept {
  if (parallelism != 0) return parallelism;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ClientExecutor::ClientExecutor(const nn::ModelSpec& spec, std::size_t parallelism) {
  const std::size_t width = resolve_parallelism(parallelism);
  workers_.reserve(width);
  for (std::size_t lane = 0; lane < width; ++lane) {
    // Any seed works: worker weights are overwritten before every use.
    common::Rng lane_rng(0x5eedULL + lane);
    workers_.push_back(nn::build_model(spec, lane_rng));
  }
  free_workers_.reserve(width);
  for (auto& worker : workers_) free_workers_.push_back(&worker);
  if (width > 1) pool_ = std::make_unique<common::ThreadPool>(width);
}

void ClientExecutor::for_each_client(
    std::size_t n_clients, const std::function<void(std::size_t, nn::Model&)>& fn) {
  if (n_clients == 0) return;
  if (!pool_ || n_clients == 1) {
    for (std::size_t u = 0; u < n_clients; ++u) fn(u, workers_.front());
    return;
  }
  pool_->parallel_for_chunks(
      0, n_clients, width(),
      [this, &fn](std::size_t chunk, std::size_t lo, std::size_t hi) {
        for (std::size_t u = lo; u < hi; ++u) fn(u, workers_[chunk]);
      });
}

void ClientExecutor::for_each_index(std::size_t n,
                                    const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (!pool_) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->parallel_for(0, n, fn);
}

void ClientExecutor::for_each_block(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (!pool_) {
    fn(0, n);
    return;
  }
  pool_->parallel_for_blocks(0, n, fn);
}

std::future<void> ClientExecutor::submit(std::function<void(nn::Model&)> task) {
  if (!pool_) {
    std::promise<void> done;
    try {
      task(workers_.front());
      done.set_value();
    } catch (...) {
      done.set_exception(std::current_exception());
    }
    return done.get_future();
  }
  return pool_->submit([this, task = std::move(task)] {
    nn::Model* worker = acquire_worker();
    struct Return {
      ClientExecutor* executor;
      nn::Model* worker;
      ~Return() { executor->release_worker(worker); }
    } guard{this, worker};
    task(*worker);
  });
}

nn::Model* ClientExecutor::acquire_worker() {
  const std::lock_guard lock(free_mutex_);
  // Invariant: concurrently running tasks <= pool threads == worker count.
  if (free_workers_.empty()) {
    throw std::logic_error("ClientExecutor: worker free list exhausted");
  }
  nn::Model* worker = free_workers_.back();
  free_workers_.pop_back();
  return worker;
}

void ClientExecutor::release_worker(nn::Model* worker) noexcept {
  const std::lock_guard lock(free_mutex_);
  free_workers_.push_back(worker);
}

}  // namespace fedsched::fl
