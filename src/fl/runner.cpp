#include "fl/runner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "device/battery.hpp"
#include "fl/report.hpp"
#include "fl/trainer.hpp"

namespace fedsched::fl {

double RunResult::mean_round_seconds() const {
  if (rounds.empty()) return 0.0;
  double sum = 0.0;
  for (const RoundRecord& r : rounds) sum += r.round_seconds;
  return sum / static_cast<double>(rounds.size());
}

FedAvgRunner::FedAvgRunner(const data::Dataset& train, const data::Dataset& test,
                           nn::ModelSpec model_spec, device::ModelDesc device_model,
                           std::vector<device::PhoneModel> phones,
                           device::NetworkType network, FlConfig config)
    : train_(train),
      test_(test),
      device_model_(std::move(device_model)),
      phones_(std::move(phones)),
      network_(network),
      config_(config),
      executor_(model_spec, config.parallelism) {
  if (phones_.empty()) throw std::invalid_argument("FedAvgRunner: no devices");
  common::Rng init_rng(config_.seed);
  global_ = nn::build_model(model_spec, init_rng);
}

RunResult FedAvgRunner::run(const data::Partition& partition) {
  if (partition.users() != phones_.size()) {
    throw std::invalid_argument("FedAvgRunner::run: partition/device count mismatch");
  }
  const std::size_t n_users = phones_.size();

  std::vector<device::Device> devices;
  devices.reserve(n_users);
  for (device::PhoneModel phone : phones_) devices.emplace_back(phone, network_);

  std::vector<nn::Sgd> optimizers(n_users, nn::Sgd(config_.sgd));
  common::Rng rng(config_.seed ^ 0xF1F1F1F1ULL);

  // Faults and deadlines. The injector's draws are pure functions of
  // (round, client), and batteries are client-indexed, so the fault path
  // keeps the parallelism determinism contract.
  const FaultInjector injector(config_.faults, config_.seed);
  const double deadline = config_.deadline_s;
  std::vector<device::Battery> batteries;
  if (injector.battery_enabled()) {
    batteries.reserve(n_users);
    for (std::size_t u = 0; u < n_users; ++u) {
      batteries.emplace_back(device::battery_of(phones_[u]), injector.initial_soc(u));
    }
  }

  RunResult result;
  std::vector<float> global_params = global_.flat_params();
  std::vector<float> aggregate(global_params.size());

  // Client-indexed slots the parallel section writes into; reduced in fixed
  // client order below so every parallelism width gives identical results.
  std::vector<std::vector<float>> locals(n_users);
  std::vector<double> client_loss(n_users, 0.0);
  std::vector<char> trained(n_users, 0);
  std::vector<common::Rng> client_rngs(n_users);
  std::vector<FaultOutcome> outcomes(n_users);
  std::vector<RoundTimings> trip_timings(n_users);

  // Null-safe observability sinks: every emitter no-ops on a disabled
  // writer, and all emission happens in the serial sections in fixed client
  // order — the trace is byte-identical at every parallelism width.
  obs::TraceWriter null_trace;
  obs::TraceWriter& trace = config_.trace ? *config_.trace : null_trace;
  trace_run_start(trace, "fedavg", n_users, config_.rounds, config_.seed,
                  config_.deadline_s, config_.faults.enabled);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    RoundRecord record;
    record.round = round;
    record.client_seconds.assign(n_users, 0.0);
    trace_round_start(trace, round);

    std::size_t total_samples = 0;
    for (const auto& share : partition.user_indices) total_samples += share.size();
    if (total_samples == 0) {
      throw std::invalid_argument("FedAvgRunner::run: empty partition");
    }

    // Seed streams are forked serially; fork() is a pure function of the
    // parent state, so the streams match the serial path exactly.
    for (std::size_t u = 0; u < n_users; ++u) {
      client_rngs[u] = rng.fork(round * n_users + u);
    }
    std::fill(trained.begin(), trained.end(), 0);
    std::fill(outcomes.begin(), outcomes.end(), FaultOutcome{});
    std::fill(trip_timings.begin(), trip_timings.end(), RoundTimings{});

    executor_.for_each_client(n_users, [&](std::size_t u, nn::Model& worker) {
      const auto& share = partition.user_indices[u];
      if (share.empty()) return;

      // A battery at the floor killed the client before the round started.
      if (injector.battery_enabled() &&
          batteries[u].dead(config_.faults.battery_floor_soc)) {
        outcomes[u] = {.kind = FaultKind::kBatteryDead, .completed = false};
        return;
      }

      // Simulated wall-clock: model pull + local epochs + model push. Each
      // device is only ever advanced by its own client.
      const auto& link = device::link_of(network_);
      RoundTimings timings;
      timings.download_s = device::download_seconds(link, device_model_.size_mb);
      timings.upload_s = device::upload_seconds(link, device_model_.size_mb);
      timings.baseline_s = devices[u].comm_seconds(device_model_);
      timings.compute_s = devices[u].train(device_model_,
                                           share.size() * config_.local_epochs);
      timings.baseline_s += timings.compute_s;
      trip_timings[u] = timings;

      FaultOutcome outcome = injector.evaluate(round, u, timings, deadline);
      if (injector.battery_enabled()) {
        batteries[u].drain(round_energy_wh(device::spec_of(phones_[u]), device_model_,
                                           timings.compute_s, network_,
                                           outcome.comm_scale));
        // Hitting the floor mid-round kills the upload too.
        if (batteries[u].dead(config_.faults.battery_floor_soc)) {
          outcome.completed = false;
          outcome.kind = FaultKind::kBatteryDead;
        }
      }
      record.client_seconds[u] = outcome.elapsed_s;
      outcomes[u] = outcome;
      if (!outcome.completed) return;  // update lost; local training discarded

      // Real training for the accuracy signal.
      worker.set_flat_params(global_params);
      EpochStats stats;
      for (std::size_t e = 0; e < config_.local_epochs; ++e) {
        stats = train_epoch(worker, optimizers[u], train_, share, config_.batch_size,
                            client_rngs[u]);
      }
      client_loss[u] = stats.mean_loss;
      trained[u] = 1;
      locals[u] = worker.flat_params();
    });

    double loss_sum = 0.0;
    std::size_t loss_users = 0;
    for (std::size_t u = 0; u < n_users; ++u) {
      if (!trained[u]) continue;
      loss_sum += client_loss[u];
      ++loss_users;
    }

    if (trace.enabled()) {
      for (std::size_t u = 0; u < n_users; ++u) {
        if (partition.user_indices[u].empty()) continue;
        trace_client_trip(trace, round, u, trip_timings[u], outcomes[u]);
        const device::TracePoint point{
            .time_s = devices[u].clock_s(),
            .temp_c = devices[u].temperature_c(),
            .speed = devices[u].speed_factor(),
            .freq_ghz = devices[u].speed_factor() *
                        device::max_cpu_ghz(devices[u].spec())};
        trace_device_snapshot(trace, round, u, point,
                              injector.battery_enabled()
                                  ? batteries[u].state_of_charge()
                                  : -1.0);
      }
    }

    // Fault bookkeeping. Survivor sample counts drive the aggregation
    // weights; with no faults they sum to total_samples exactly.
    record.client_faults.resize(n_users);
    std::size_t survivor_samples = 0;
    for (std::size_t u = 0; u < n_users; ++u) {
      record.client_faults[u] = outcomes[u].kind;
      record.retry_count += outcomes[u].retries;
      if (trained[u]) {
        ++record.completed_clients;
        survivor_samples += partition.user_indices[u].size();
      } else if (!partition.user_indices[u].empty()) {
        ++record.dropped_clients;
      }
    }

    if (record.completed_clients == 0) {
      // Zero survivors: skip the round, keep the global model.
      record.skipped = true;
    } else {
      // FedAvg: weight by the client's share of the *surviving* sample
      // count. Parallel over parameter blocks — each index sums clients in
      // client order, so any blocking yields the same floats.
      std::fill(aggregate.begin(), aggregate.end(), 0.0f);
      executor_.for_each_block(aggregate.size(), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t u = 0; u < n_users; ++u) {
          if (!trained[u]) continue;
          const float weight = static_cast<float>(partition.user_indices[u].size()) /
                               static_cast<float>(survivor_samples);
          const float* local = locals[u].data();
          for (std::size_t i = lo; i < hi; ++i) aggregate[i] += weight * local[i];
        }
      });

      global_params = aggregate;
      global_.set_flat_params(global_params);
    }

    // With drops under a finite deadline the server holds the round open
    // until the deadline; otherwise the straggler's finish closes it.
    const double busiest =
        *std::max_element(record.client_seconds.begin(), record.client_seconds.end());
    record.round_seconds = (record.dropped_clients > 0 && std::isfinite(deadline))
                               ? deadline
                               : busiest;
    record.mean_train_loss = loss_users ? loss_sum / static_cast<double>(loss_users) : 0.0;
    result.total_seconds += record.round_seconds;
    record.cumulative_seconds = result.total_seconds;
    if (config_.evaluate_each_round) {
      record.test_accuracy = global_.accuracy(test_.images(), test_.labels());
    }
    trace_round_end(trace, record);
    result.rounds.push_back(std::move(record));

    if (config_.idle_between_rounds_s > 0.0) {
      for (auto& dev : devices) dev.idle(config_.idle_between_rounds_s);
    }
  }

  result.final_accuracy = global_.accuracy(test_.images(), test_.labels());
  if (!result.rounds.empty() && config_.evaluate_each_round) {
    result.rounds.back().test_accuracy = result.final_accuracy;
  }
  trace_run_end(trace, result.final_accuracy, result.total_seconds,
                result.rounds.size());
  trace.flush();
  if (config_.metrics) record_run_metrics(*config_.metrics, result);
  return result;
}

}  // namespace fedsched::fl
