#include "fl/runner.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <utility>

#include "device/battery.hpp"
#include "fl/aggregate.hpp"
#include "fl/checkpoint/checkpoint.hpp"
#include "fl/report.hpp"
#include "fl/trainer.hpp"
#include "nn/serialize.hpp"

namespace fedsched::fl {

double RunResult::mean_round_seconds() const {
  if (rounds.empty()) return 0.0;
  double sum = 0.0;
  for (const RoundRecord& r : rounds) sum += r.round_seconds;
  return sum / static_cast<double>(rounds.size());
}

FedAvgRunner::FedAvgRunner(const data::Dataset& train, const data::Dataset& test,
                           nn::ModelSpec model_spec, device::ModelDesc device_model,
                           std::vector<device::PhoneModel> phones,
                           device::NetworkType network, FlConfig config)
    : train_(train),
      test_(test),
      device_model_(std::move(device_model)),
      phones_(std::move(phones)),
      network_(network),
      config_(config),
      executor_(model_spec, config.parallelism) {
  if (phones_.empty()) throw std::invalid_argument("FedAvgRunner: no devices");
  common::Rng init_rng(config_.seed);
  global_ = nn::build_model(model_spec, init_rng);
}

RunResult FedAvgRunner::run(const data::Partition& partition) {
  if (partition.users() != phones_.size()) {
    throw std::invalid_argument("FedAvgRunner::run: partition/device count mismatch");
  }
  const std::size_t n_users = phones_.size();

  // Self-healing loop state: health tracking feeds the replanner, which may
  // swap the working partition between rounds. Both live only when the
  // policy is on; an off policy leaves the run bit-identical to older builds.
  const bool recovery = config_.reschedule.enabled();
  // Replication reads risk from the same tracker; it works with recovery off
  // (the tracker then only serves the hedge planner).
  const bool hedging = config_.replicate.enabled();
  std::optional<health::HealthTracker> tracker;
  std::optional<health::Replanner> replanner;
  std::optional<replication::ReplicationPlanner> hedger;
  if (recovery || hedging) tracker.emplace(config_.reschedule.health, n_users);
  if (recovery) replanner.emplace(config_.reschedule, n_users);
  if (hedging) hedger.emplace(config_.replicate, n_users);
  // Mutable copy: the replanner reassigns shares, and resume restores the
  // partition in force when the checkpoint was written.
  data::Partition working = partition;

  std::vector<device::Device> devices;
  devices.reserve(n_users);
  for (device::PhoneModel phone : phones_) devices.emplace_back(phone, network_);

  std::vector<nn::Sgd> optimizers(n_users, nn::Sgd(config_.sgd));
  common::Rng rng(config_.seed ^ 0xF1F1F1F1ULL);

  // Faults and deadlines. The injector's draws are pure functions of
  // (round, client), and batteries are client-indexed, so the fault path
  // keeps the parallelism determinism contract.
  const FaultInjector injector(config_.faults, config_.seed);
  const double deadline = config_.deadline_s;
  std::vector<device::Battery> batteries;
  if (injector.battery_enabled()) {
    batteries.reserve(n_users);
    for (std::size_t u = 0; u < n_users; ++u) {
      batteries.emplace_back(device::battery_of(phones_[u]), injector.initial_soc(u));
    }
  }

  RunResult result;
  std::vector<float> global_params = global_.flat_params();
  std::vector<float> aggregate(global_params.size());

  // Client-indexed slots the parallel section writes into; reduced in fixed
  // client order below so every parallelism width gives identical results.
  std::vector<std::vector<float>> locals(n_users);
  std::vector<double> client_loss(n_users, 0.0);
  std::vector<char> trained(n_users, 0);
  std::vector<common::Rng> client_rngs(n_users);
  std::vector<FaultOutcome> outcomes(n_users);
  std::vector<RoundTimings> trip_timings(n_users);

  // Null-safe observability sinks: every emitter no-ops on a disabled
  // writer, and all emission happens in the serial sections in fixed client
  // order — the trace is byte-identical at every parallelism width.
  obs::TraceWriter null_trace;
  obs::TraceWriter& trace = config_.trace ? *config_.trace : null_trace;
  const CheckpointConfig& ckpt = config_.checkpoint;
  // Mirror trace bytes into memory so checkpoints can store the prefix; a
  // resumed run replays its saved prefix and keeps capturing for the next
  // checkpoint, so the final trace file is byte-identical either way.
  if (ckpt.save_enabled() || !ckpt.resume_from.empty()) trace.enable_capture();

  std::size_t start_round = 0;
  if (!ckpt.resume_from.empty()) {
    checkpoint::RunState state = checkpoint::load_checkpoint(ckpt.resume_from);
    if (state.seed != config_.seed) {
      throw std::runtime_error("FedAvgRunner: checkpoint seed mismatch");
    }
    if (state.device_clock_s.size() != n_users ||
        state.device_temp_c.size() != n_users || state.velocities.size() != n_users ||
        state.partition.users() != n_users) {
      throw std::runtime_error("FedAvgRunner: checkpoint fleet size mismatch");
    }
    if (state.model_fingerprint != nn::layout_fingerprint(global_) ||
        state.global_params.size() != global_.param_count()) {
      throw std::runtime_error("FedAvgRunner: checkpoint model mismatch");
    }
    if (state.rounds_completed > config_.rounds) {
      throw std::runtime_error("FedAvgRunner: checkpoint is past the round budget");
    }
    if (state.recovery_active != recovery) {
      throw std::runtime_error("FedAvgRunner: checkpoint reschedule config mismatch");
    }
    if (state.replication_active != hedging) {
      throw std::runtime_error("FedAvgRunner: checkpoint replication config mismatch");
    }
    global_params = std::move(state.global_params);
    global_.set_flat_params(global_params);
    for (std::size_t u = 0; u < n_users; ++u) {
      optimizers[u].set_flat_velocity(global_, state.velocities[u]);
      devices[u].restore(state.device_clock_s[u], state.device_temp_c[u]);
    }
    if (injector.battery_enabled()) {
      if (state.battery_soc.size() != n_users) {
        throw std::runtime_error("FedAvgRunner: checkpoint lacks battery state");
      }
      for (std::size_t u = 0; u < n_users; ++u) {
        batteries[u] =
            device::Battery(device::battery_of(phones_[u]), state.battery_soc[u]);
      }
    }
    working = std::move(state.partition);
    result.rounds = std::move(state.rounds);
    result.total_seconds = state.total_seconds;
    result.replica_log = std::move(state.replica_log);
    if (recovery || hedging) tracker->restore(state.health);
    if (recovery) {
      replanner->restore_shards(std::vector<std::size_t>(
          state.replanner_shards.begin(), state.replanner_shards.end()));
    }
    rng.set_state_words(state.rng_words);
    start_round = static_cast<std::size_t>(state.rounds_completed);
    // Replay the interrupted run's trace verbatim (includes run_start).
    if (trace.enabled()) {
      trace.write_raw(state.trace_prefix,
                      static_cast<std::size_t>(state.trace_events));
    }
  } else {
    trace_run_start(trace, "fedavg", n_users, config_.rounds, config_.seed,
                    config_.deadline_s, config_.faults.enabled);
  }

  for (std::size_t round = start_round; round < config_.rounds; ++round) {
    RoundRecord record;
    record.round = round;
    record.client_seconds.assign(n_users, 0.0);
    trace_round_start(trace, round);

    std::size_t total_samples = 0;
    for (const auto& share : working.user_indices) total_samples += share.size();
    if (total_samples == 0) {
      throw std::invalid_argument("FedAvgRunner::run: empty partition");
    }

    // Hedge plan for the round: which at-risk shares get speculative copies
    // and on which hosts. Decided serially from tracker state before any
    // client runs, so the plan is identical at every parallelism width.
    replication::RoundPlan hedge_plan;
    if (hedging) {
      std::vector<std::size_t> share_sizes(n_users);
      for (std::size_t u = 0; u < n_users; ++u) {
        share_sizes[u] = working.user_indices[u].size();
      }
      hedge_plan = hedger->plan(*tracker, share_sizes, config_.local_epochs);
      record.replicas_assigned = hedge_plan.assignments.size();
      if (!hedge_plan.empty()) trace_replication_plan(trace, round, hedge_plan);
    }

    // Seed streams are forked serially; fork() is a pure function of the
    // parent state, so the streams match the serial path exactly.
    for (std::size_t u = 0; u < n_users; ++u) {
      client_rngs[u] = rng.fork(round * n_users + u);
    }
    std::fill(trained.begin(), trained.end(), 0);
    std::fill(outcomes.begin(), outcomes.end(), FaultOutcome{});
    std::fill(trip_timings.begin(), trip_timings.end(), RoundTimings{});

    executor_.for_each_client(n_users, [&](std::size_t u, nn::Model& worker) {
      const auto& share = working.user_indices[u];
      if (share.empty()) return;

      // A battery at the floor killed the client before the round started.
      if (injector.battery_enabled() &&
          batteries[u].dead(config_.faults.battery_floor_soc)) {
        outcomes[u] = {.kind = FaultKind::kBatteryDead, .completed = false};
        return;
      }

      // Simulated wall-clock: model pull + local epochs + model push. Each
      // device is only ever advanced by its own client.
      const auto& link = device::link_of(network_);
      RoundTimings timings;
      timings.download_s = device::download_seconds(link, device_model_.size_mb);
      timings.upload_s = device::upload_seconds(link, device_model_.size_mb);
      timings.baseline_s = devices[u].comm_seconds(device_model_);
      timings.compute_s = devices[u].train(device_model_,
                                           share.size() * config_.local_epochs);
      timings.baseline_s += timings.compute_s;
      trip_timings[u] = timings;

      FaultOutcome outcome = injector.evaluate(round, u, timings, deadline);
      if (injector.battery_enabled()) {
        batteries[u].drain(round_energy_wh(device::spec_of(phones_[u]), device_model_,
                                           timings.compute_s, network_,
                                           outcome.comm_scale));
        // Hitting the floor mid-round kills the upload too.
        if (batteries[u].dead(config_.faults.battery_floor_soc)) {
          outcome.completed = false;
          outcome.kind = FaultKind::kBatteryDead;
        }
      }
      record.client_seconds[u] = outcome.elapsed_s;
      outcomes[u] = outcome;
      if (!outcome.completed) return;  // update lost; local training discarded

      // Real training for the accuracy signal.
      worker.set_flat_params(global_params);
      EpochStats stats;
      for (std::size_t e = 0; e < config_.local_epochs; ++e) {
        stats = train_epoch(worker, optimizers[u], train_, share, config_.batch_size,
                            client_rngs[u]);
      }
      client_loss[u] = stats.mean_loss;
      trained[u] = 1;
      locals[u] = worker.flat_params();
    });

    // Speculative copies run on their hosts *after* the host's own round:
    // extra compute on the host's device clock (thermal trajectory included),
    // an extra upload, extra battery drain — and the host's own fault verdict
    // applies to the copy. Serial, in plan order, so devices are only ever
    // advanced from one thread and the timeline is width-invariant.
    std::vector<replication::ReplicaOutcome> replica_outcomes;
    std::vector<replication::ShareResolution> resolutions;
    std::vector<char> rescued(n_users, 0);
    if (!hedge_plan.empty()) {
      replica_outcomes.reserve(hedge_plan.assignments.size());
      for (const replication::ReplicaAssignment& a : hedge_plan.assignments) {
        replication::ReplicaOutcome ro;
        ro.owner = a.owner;
        ro.host = a.host;
        const FaultOutcome& host_out = outcomes[a.host];
        if (!host_out.completed) {
          // The host never even delivered its own share; the copy dies with it.
          ro.finish_s = host_out.elapsed_s;
          ro.kind = host_out.kind;
        } else {
          const double copy_compute = devices[a.host].train(
              device_model_,
              working.user_indices[a.owner].size() * config_.local_epochs);
          ro.finish_s = host_out.elapsed_s + copy_compute +
                        trip_timings[a.host].upload_s * host_out.comm_scale;
          ro.completed = true;
          if (injector.battery_enabled()) {
            batteries[a.host].drain(
                round_energy_wh(device::spec_of(phones_[a.host]), device_model_,
                                copy_compute, network_, host_out.comm_scale));
            if (batteries[a.host].dead(config_.faults.battery_floor_soc)) {
              ro.completed = false;
              ro.kind = FaultKind::kBatteryDead;
            }
          }
          if (ro.completed && std::isfinite(deadline) && ro.finish_s > deadline) {
            ro.completed = false;
            ro.kind = FaultKind::kDeadlineMiss;
          }
        }
        replica_outcomes.push_back(ro);
      }

      // First-finisher resolution per replicated share, owners ascending.
      for (std::size_t u = 0; u < n_users; ++u) {
        std::vector<replication::ReplicaOutcome> mine;
        for (const auto& ro : replica_outcomes) {
          if (ro.owner == u) mine.push_back(ro);
        }
        if (mine.empty()) continue;
        const bool primary_ok =
            outcomes[u].completed && !working.user_indices[u].empty();
        replication::ShareResolution res = replication::resolve_first_finisher(
            u, primary_ok, outcomes[u].elapsed_s, mine);
        if (res.rescued) rescued[u] = 1;
        if (res.arrived && res.winner != u) ++record.replicas_won;
        record.shares_rescued += res.rescued;
        resolutions.push_back(res);
      }
    }

    // Rescue pass: train the shares a replica saved. The primary's lane
    // returned before touching its RNG fork or optimizer, so training here
    // with the same (round, owner)-keyed stream produces the exact bytes the
    // primary would have — the winner's identity never leaks into the model.
    if (record.shares_rescued > 0) {
      executor_.for_each_client(n_users, [&](std::size_t u, nn::Model& worker) {
        if (!rescued[u]) return;
        const auto& share = working.user_indices[u];
        worker.set_flat_params(global_params);
        EpochStats stats;
        for (std::size_t e = 0; e < config_.local_epochs; ++e) {
          stats = train_epoch(worker, optimizers[u], train_, share,
                              config_.batch_size, client_rngs[u]);
        }
        client_loss[u] = stats.mean_loss;
        trained[u] = 1;
        locals[u] = worker.flat_params();
      });
    }

    double loss_sum = 0.0;
    std::size_t loss_users = 0;
    for (std::size_t u = 0; u < n_users; ++u) {
      if (!trained[u]) continue;
      loss_sum += client_loss[u];
      ++loss_users;
    }

    if (trace.enabled()) {
      for (std::size_t u = 0; u < n_users; ++u) {
        if (working.user_indices[u].empty()) continue;
        trace_client_trip(trace, round, u, trip_timings[u], outcomes[u]);
        const device::TracePoint point{
            .time_s = devices[u].clock_s(),
            .temp_c = devices[u].temperature_c(),
            .speed = devices[u].speed_factor(),
            .freq_ghz = devices[u].speed_factor() *
                        device::max_cpu_ghz(devices[u].spec())};
        trace_device_snapshot(trace, round, u, point,
                              injector.battery_enabled()
                                  ? batteries[u].state_of_charge()
                                  : -1.0);
      }
      for (const replication::ShareResolution& res : resolutions) {
        trace_replica_result(trace, round, res);
      }
    }

    // Fault bookkeeping. Survivor sample counts drive the aggregation
    // weights; with no faults they sum to total_samples exactly.
    record.client_faults.resize(n_users);
    std::size_t survivor_samples = 0;
    for (std::size_t u = 0; u < n_users; ++u) {
      record.client_faults[u] = outcomes[u].kind;
      record.retry_count += outcomes[u].retries;
      if (trained[u]) {
        ++record.completed_clients;
        survivor_samples += working.user_indices[u].size();
      } else if (!working.user_indices[u].empty()) {
        ++record.dropped_clients;
      }
    }

    if (record.completed_clients == 0 || survivor_samples == 0) {
      // Zero survivors: skip the round, keep the global model. The explicit
      // survivor_samples guard is defensive — trained clients always hold a
      // non-empty share today, but the aggregation divides by it, and an
      // all-dropped round must never turn that into a 0/0
      // (tests/fl/test_faults.cpp pins the skipped RoundRecord).
      record.skipped = true;
    } else {
      // FedAvg: weight by the client's share of the *surviving* sample
      // count (fl/aggregate.hpp keeps the reduction bit-identical at any
      // executor width).
      std::vector<std::size_t> share_sizes(n_users);
      for (std::size_t u = 0; u < n_users; ++u) {
        share_sizes[u] = working.user_indices[u].size();
      }
      survivor_weighted_average(aggregate, locals, trained, share_sizes,
                                survivor_samples, executor_);

      global_params = aggregate;
      global_.set_flat_params(global_params);
    }

    // With drops under a finite deadline the server holds the round open
    // until the deadline; otherwise the straggler's finish closes it. A
    // replicated share gates at its winning arrival instead of the primary's
    // busy time — the whole point of hedging — while losing replicas never
    // hold the round (speculative copies are abandoned once a copy is in).
    std::vector<double> gates = record.client_seconds;
    for (const replication::ShareResolution& res : resolutions) {
      if (res.arrived) gates[res.owner] = res.finish_s;
    }
    const double busiest = *std::max_element(gates.begin(), gates.end());
    record.round_seconds = (record.dropped_clients > 0 && std::isfinite(deadline))
                               ? deadline
                               : busiest;
    record.mean_train_loss = loss_users ? loss_sum / static_cast<double>(loss_users) : 0.0;
    result.total_seconds += record.round_seconds;
    record.cumulative_seconds = result.total_seconds;
    if (config_.evaluate_each_round) {
      record.test_accuracy = global_.accuracy(test_.images(), test_.labels());
    }
    trace_round_end(trace, record);

    // Self-healing: fold the round into per-client health, then let the
    // replanner swap the shard plan if the fleet drifted. All serial, all
    // derived from client-indexed slots — deterministic at any parallelism.
    if (recovery || hedging) {
      std::vector<health::HealthTracker::Observation> observed(n_users);
      for (std::size_t u = 0; u < n_users; ++u) {
        const auto& share = working.user_indices[u];
        health::HealthTracker::Observation& o = observed[u];
        o.participated = !share.empty();
        // Offline profiles for the drift baseline: the reschedule plan's when
        // recovery is on, else the replication config's (either may be
        // absent; predicted <= 0 skips the drift update).
        const sched::UserProfile* prof = nullptr;
        if (u < config_.reschedule.users.size()) {
          prof = &config_.reschedule.users[u];
        } else if (u < config_.replicate.users.size()) {
          prof = &config_.replicate.users[u];
        }
        o.predicted_s =
            prof ? prof->epoch_seconds(share.size() * config_.local_epochs) : 0.0;
        o.measured_s = outcomes[u].elapsed_s;
        o.fault = outcomes[u].kind;
        // A rescued share still means the *primary* faulted: health judges
        // the client's own trip, not whether a replica saved its share.
        o.completed = o.participated && outcomes[u].completed;
        o.retries = outcomes[u].retries;
        o.soc = injector.battery_enabled() ? batteries[u].state_of_charge() : -1.0;
      }
      tracker->observe_round(observed);
      trace_health(trace, round, *tracker);

      if (recovery && round + 1 < config_.rounds && tracker->replan_due(round)) {
        const health::ReplanOutcome outcome = replanner->replan(*tracker, *tracker);
        if (outcome.replanned) {
          record.rescheduled = true;
          record.moved_shards = outcome.moved_shards;
          // Repartition with an Rng that is a pure function of (seed, round)
          // so a resumed run rebuilds the identical partition.
          common::Rng repart_rng =
              common::Rng(config_.seed ^ 0xA11C0DEDULL).fork(round);
          working = replanner->materialize(train_, total_samples, repart_rng);
          trace_reschedule(trace, round, config_.reschedule.policy, outcome);
        }
        // Either way the decision stands until the next drift/status change:
        // rebaseline the drift detector (a failed replan otherwise retriggers
        // every round while the fleet cannot improve).
        tracker->note_replan(round);
      }
    }
    result.replica_log.insert(result.replica_log.end(), resolutions.begin(),
                              resolutions.end());
    result.rounds.push_back(std::move(record));

    if (config_.idle_between_rounds_s > 0.0) {
      for (auto& dev : devices) dev.idle(config_.idle_between_rounds_s);
    }

    // Checkpoint after the round's full effects (including idle cooling) so
    // resume continues the exact thermal trajectory. The trace event is
    // written first so it lands inside the saved prefix.
    const std::size_t completed = round + 1;
    if (ckpt.due(completed)) {
      trace_checkpoint(trace, completed, result.total_seconds);
      checkpoint::RunState state;
      state.seed = config_.seed;
      state.rounds_completed = completed;
      state.model_fingerprint = nn::layout_fingerprint(global_);
      state.global_params = global_params;
      state.velocities.resize(n_users);
      state.device_clock_s.resize(n_users);
      state.device_temp_c.resize(n_users);
      for (std::size_t u = 0; u < n_users; ++u) {
        state.velocities[u] = optimizers[u].flat_velocity();
        state.device_clock_s[u] = devices[u].clock_s();
        state.device_temp_c[u] = devices[u].temperature_c();
      }
      if (injector.battery_enabled()) {
        state.battery_soc.resize(n_users);
        for (std::size_t u = 0; u < n_users; ++u) {
          state.battery_soc[u] = batteries[u].state_of_charge();
        }
      }
      state.partition = working;
      state.rounds = result.rounds;
      state.total_seconds = result.total_seconds;
      state.recovery_active = recovery;
      state.replication_active = hedging;
      if (recovery || hedging) state.health = tracker->snapshot();
      if (recovery) {
        state.replanner_shards.assign(replanner->current_shards().begin(),
                                      replanner->current_shards().end());
      }
      state.replica_log = result.replica_log;
      state.rng_words = rng.state_words();
      if (trace.capture_enabled()) {
        state.trace_prefix = trace.captured();
        state.trace_events = trace.captured_events();
      }
      checkpoint::save_checkpoint(state, ckpt.path);
    }
    if (ckpt.halt_after_rounds > 0 && completed == ckpt.halt_after_rounds) {
      // Deterministic kill: the checkpoint above is on disk; stop cleanly
      // without the final evaluation or run_end event.
      result.halted = true;
      if (recovery || hedging) result.client_health = tracker->all();
      trace.flush();
      return result;
    }
  }

  if (recovery || hedging) result.client_health = tracker->all();
  result.final_accuracy = global_.accuracy(test_.images(), test_.labels());
  if (!result.rounds.empty() && config_.evaluate_each_round) {
    result.rounds.back().test_accuracy = result.final_accuracy;
  }
  trace_run_end(trace, result.final_accuracy, result.total_seconds,
                result.rounds.size());
  trace.flush();
  if (config_.metrics) record_run_metrics(*config_.metrics, result);
  return result;
}

}  // namespace fedsched::fl
