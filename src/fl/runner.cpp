#include "fl/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "fl/trainer.hpp"

namespace fedsched::fl {

double RunResult::mean_round_seconds() const {
  if (rounds.empty()) return 0.0;
  double sum = 0.0;
  for (const RoundRecord& r : rounds) sum += r.round_seconds;
  return sum / static_cast<double>(rounds.size());
}

FedAvgRunner::FedAvgRunner(const data::Dataset& train, const data::Dataset& test,
                           nn::ModelSpec model_spec, device::ModelDesc device_model,
                           std::vector<device::PhoneModel> phones,
                           device::NetworkType network, FlConfig config)
    : train_(train),
      test_(test),
      device_model_(std::move(device_model)),
      phones_(std::move(phones)),
      network_(network),
      config_(config),
      executor_(model_spec, config.parallelism) {
  if (phones_.empty()) throw std::invalid_argument("FedAvgRunner: no devices");
  common::Rng init_rng(config_.seed);
  global_ = nn::build_model(model_spec, init_rng);
}

RunResult FedAvgRunner::run(const data::Partition& partition) {
  if (partition.users() != phones_.size()) {
    throw std::invalid_argument("FedAvgRunner::run: partition/device count mismatch");
  }
  const std::size_t n_users = phones_.size();

  std::vector<device::Device> devices;
  devices.reserve(n_users);
  for (device::PhoneModel phone : phones_) devices.emplace_back(phone, network_);

  std::vector<nn::Sgd> optimizers(n_users, nn::Sgd(config_.sgd));
  common::Rng rng(config_.seed ^ 0xF1F1F1F1ULL);

  RunResult result;
  std::vector<float> global_params = global_.flat_params();
  std::vector<float> aggregate(global_params.size());

  // Client-indexed slots the parallel section writes into; reduced in fixed
  // client order below so every parallelism width gives identical results.
  std::vector<std::vector<float>> locals(n_users);
  std::vector<double> client_loss(n_users, 0.0);
  std::vector<char> trained(n_users, 0);
  std::vector<common::Rng> client_rngs(n_users);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    RoundRecord record;
    record.round = round;
    record.client_seconds.assign(n_users, 0.0);

    std::size_t total_samples = 0;
    for (const auto& share : partition.user_indices) total_samples += share.size();
    if (total_samples == 0) {
      throw std::invalid_argument("FedAvgRunner::run: empty partition");
    }

    // Seed streams are forked serially; fork() is a pure function of the
    // parent state, so the streams match the serial path exactly.
    for (std::size_t u = 0; u < n_users; ++u) {
      client_rngs[u] = rng.fork(round * n_users + u);
    }
    std::fill(trained.begin(), trained.end(), 0);

    executor_.for_each_client(n_users, [&](std::size_t u, nn::Model& worker) {
      const auto& share = partition.user_indices[u];
      if (share.empty()) return;

      // Simulated wall-clock: model pull + local epochs + model push. Each
      // device is only ever advanced by its own client.
      double elapsed = devices[u].comm_seconds(device_model_);
      elapsed += devices[u].train(device_model_,
                                  share.size() * config_.local_epochs);
      record.client_seconds[u] = elapsed;

      // Real training for the accuracy signal.
      worker.set_flat_params(global_params);
      EpochStats stats;
      for (std::size_t e = 0; e < config_.local_epochs; ++e) {
        stats = train_epoch(worker, optimizers[u], train_, share, config_.batch_size,
                            client_rngs[u]);
      }
      client_loss[u] = stats.mean_loss;
      trained[u] = 1;
      locals[u] = worker.flat_params();
    });

    double loss_sum = 0.0;
    std::size_t loss_users = 0;
    for (std::size_t u = 0; u < n_users; ++u) {
      if (!trained[u]) continue;
      loss_sum += client_loss[u];
      ++loss_users;
    }

    // FedAvg: weight by the client's sample count. Parallel over parameter
    // blocks — each index sums clients in client order, so any blocking
    // yields the same floats.
    std::fill(aggregate.begin(), aggregate.end(), 0.0f);
    executor_.for_each_block(aggregate.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t u = 0; u < n_users; ++u) {
        if (!trained[u]) continue;
        const float weight = static_cast<float>(partition.user_indices[u].size()) /
                             static_cast<float>(total_samples);
        const float* local = locals[u].data();
        for (std::size_t i = lo; i < hi; ++i) aggregate[i] += weight * local[i];
      }
    });

    global_params = aggregate;
    global_.set_flat_params(global_params);

    record.round_seconds =
        *std::max_element(record.client_seconds.begin(), record.client_seconds.end());
    record.mean_train_loss = loss_users ? loss_sum / static_cast<double>(loss_users) : 0.0;
    result.total_seconds += record.round_seconds;
    record.cumulative_seconds = result.total_seconds;
    if (config_.evaluate_each_round) {
      record.test_accuracy = global_.accuracy(test_.images(), test_.labels());
    }
    result.rounds.push_back(std::move(record));

    if (config_.idle_between_rounds_s > 0.0) {
      for (auto& dev : devices) dev.idle(config_.idle_between_rounds_s);
    }
  }

  result.final_accuracy = global_.accuracy(test_.images(), test_.labels());
  if (!result.rounds.empty() && config_.evaluate_each_round) {
    result.rounds.back().test_accuracy = result.final_accuracy;
  }
  return result;
}

}  // namespace fedsched::fl
