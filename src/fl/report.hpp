#pragma once
// Human-readable reports over FL runs: a per-round table, a textual Gantt
// timeline of client activity within a round, and CSV export of the
// convergence curve.

#include <string>

#include "common/table.hpp"
#include "fl/runner.hpp"

namespace fedsched::fl {

/// Per-round table: round, time, cumulative time, loss, accuracy, plus fault
/// counters (completed / dropped clients and upload retries).
[[nodiscard]] common::Table round_table(const RunResult& result);

/// One-line rollup of fault activity across the run: total completed and
/// dropped client-rounds, retries, skipped rounds, and a per-kind breakdown.
[[nodiscard]] std::string fault_summary(const RunResult& result);

/// Textual Gantt chart of one round: one bar per client, proportional to its
/// busy time, '#' for the straggler. `width` is the bar length of the
/// longest client.
[[nodiscard]] std::string round_timeline(const RoundRecord& record,
                                         const std::vector<std::string>& client_names,
                                         std::size_t width = 50);

/// Convergence curve (cumulative simulated seconds vs accuracy) as CSV rows;
/// rounds without an accuracy sample are skipped.
[[nodiscard]] std::string convergence_csv(const RunResult& result);

}  // namespace fedsched::fl
