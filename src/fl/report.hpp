#pragma once
// Reports over FL runs. Human-readable: a per-round table, a textual Gantt
// timeline of client activity within a round, a fault rollup, and CSV export
// of the convergence curve. Machine-readable: JSONL trace events
// (obs::TraceWriter) and run metrics (obs::MetricsRegistry) shared by all
// three runners — see docs/API.md "Structured observability" for the event
// schema.

#include <string>
#include <string_view>

#include "common/table.hpp"
#include "fl/async_runner.hpp"
#include "fl/gossip_runner.hpp"
#include "fl/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fedsched::fl {

/// Per-round table: round, time, cumulative time, loss, accuracy, plus fault
/// counters (completed / dropped clients and upload retries).
[[nodiscard]] common::Table round_table(const RunResult& result);

/// One-line rollup of fault activity across the run: total completed and
/// dropped client-rounds, retries, skipped rounds, and a per-kind breakdown.
/// When self-healing ran (RunResult::client_health non-empty) a second line
/// summarizes recovery: reschedules, shards moved, probations, and clients
/// permanently excluded. When replication assigned any copies, a third line
/// summarizes hedging: replicas, first-finishes, rescues, waste.
[[nodiscard]] std::string fault_summary(const RunResult& result);

/// Per-client recovery table (self-healing runs): final status, speed-drift
/// multiplier, faults, upload retries, probations served, and shards the
/// replanner moved away. Throws when the run carries no health state.
[[nodiscard]] common::Table recovery_table(const RunResult& result,
                                           const std::vector<std::string>& client_names);

/// Textual Gantt chart of one round: one bar per client, proportional to its
/// busy time and never longer than `width`, '#' for the straggler. Clients
/// that dropped (any non-kNone fault) render with 'x' bars and their fault
/// name — under a finite deadline their busy time can exceed the recorded
/// makespan, which is why bars clamp.
[[nodiscard]] std::string round_timeline(const RoundRecord& record,
                                         const std::vector<std::string>& client_names,
                                         std::size_t width = 50);

/// Convergence curve (cumulative simulated seconds vs accuracy) as CSV rows;
/// rounds without an accuracy sample are skipped.
[[nodiscard]] std::string convergence_csv(const RunResult& result);

// --- JSONL trace events -------------------------------------------------
//
// Every emitter is a no-op on a disabled writer. All payloads are simulated
// time only; callers must emit from serial code in fixed client order so the
// trace is byte-identical at every `parallelism` width.

/// `run_start`: runner name, fleet size, round budget, seed, deadline,
/// whether fault injection is live.
void trace_run_start(obs::TraceWriter& trace, std::string_view runner,
                     std::size_t clients, std::size_t rounds, std::uint64_t seed,
                     double deadline_s, bool faults_enabled);

/// `round_start`: emitted before any client trip of the round.
void trace_round_start(obs::TraceWriter& trace, std::size_t round);

/// `client_trip`: per-(round, client) timing split (download / compute /
/// upload / total busy), retries, fault verdict. The async runner passes its
/// per-client trip counter as `round`.
void trace_client_trip(obs::TraceWriter& trace, std::size_t round, std::size_t client,
                       const RoundTimings& timings, const FaultOutcome& outcome);

/// `device`: thermal/clock snapshot of one client's device after its trip
/// (the TracePoint hook of device/device.hpp). `battery_soc` < 0 omits the
/// soc field (fleet without battery tracking).
void trace_device_snapshot(obs::TraceWriter& trace, std::size_t round,
                           std::size_t client, const device::TracePoint& point,
                           double battery_soc = -1.0);

/// `round_end`: the full RoundRecord (accuracy omitted when not evaluated).
/// The schema is frozen to the pre-recovery fields; reschedule outcomes ride
/// in their own `reschedule` event so traces of recovery-off runs are
/// byte-identical to older builds.
void trace_round_end(obs::TraceWriter& trace, const RoundRecord& record);

// Self-healing events. Emitted only when recovery (or, for `health`,
// replication) is active, so traces of everything-off runs carry no new
// event kinds.

/// `health`: per-round fleet health — eligible count, per-client status
/// string array, and per-client cost multipliers.
void trace_health(obs::TraceWriter& trace, std::size_t round,
                  const health::HealthTracker& tracker);

/// `reschedule`: the replanner swapped the shard plan at the end of `round`.
void trace_reschedule(obs::TraceWriter& trace, std::size_t round,
                      health::ReschedulePolicy policy,
                      const health::ReplanOutcome& outcome);

// Replication events. Emitted only for rounds that actually assigned
// replicas, so replication-off runs (and risk-free rounds) leave the trace
// byte-identical.

/// `replication`: the round's hedge plan — flagged client count and the
/// (owner, host, predicted_finish_s) triple of every assignment.
void trace_replication_plan(obs::TraceWriter& trace, std::size_t round,
                            const replication::RoundPlan& plan);

/// `replica`: first-finisher verdict of one replicated share — winner,
/// arrival time, whether a replica rescued a faulted primary.
void trace_replica_result(obs::TraceWriter& trace, std::size_t round,
                          const replication::ShareResolution& resolution);

/// `checkpoint`: a checkpoint was written after `completed` rounds. Carries
/// no paths or byte counts, so the event bytes are identical between a
/// halted run and its uninterrupted twin.
void trace_checkpoint(obs::TraceWriter& trace, std::size_t completed,
                      double total_seconds);

/// `run_end`: final accuracy + total simulated seconds + rounds executed.
void trace_run_end(obs::TraceWriter& trace, double final_accuracy,
                   double total_seconds, std::size_t rounds);

// --- metrics ------------------------------------------------------------

/// Fold a finished synchronous run into the registry: fl.* counters
/// (rounds, completions, drops, retries, skips), round/client-second and
/// loss histograms, final accuracy / total seconds gauges.
void record_run_metrics(obs::MetricsRegistry& metrics, const RunResult& result);

/// Gossip flavour: per-round counters plus mean accuracy / consensus gap.
void record_run_metrics(obs::MetricsRegistry& metrics, const GossipRunResult& result);

/// Async flavour: merge/drop/retry/battery counters, staleness and mix
/// histograms, final accuracy / elapsed gauges.
void record_run_metrics(obs::MetricsRegistry& metrics, const AsyncRunResult& result);

}  // namespace fedsched::fl
