#include "fl/async_runner.hpp"

#include <cmath>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>

#include "device/battery.hpp"
#include "fl/report.hpp"
#include "fl/trainer.hpp"

namespace fedsched::fl {

double AsyncRunResult::mean_staleness() const {
  if (updates.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : updates) sum += static_cast<double>(u.staleness);
  return sum / static_cast<double>(updates.size());
}

std::size_t AsyncRunResult::updates_from(std::size_t client) const {
  std::size_t count = 0;
  for (const auto& u : updates) count += (u.client == client);
  return count;
}

AsyncRunner::AsyncRunner(const data::Dataset& train, const data::Dataset& test,
                         nn::ModelSpec model_spec, device::ModelDesc device_model,
                         std::vector<device::PhoneModel> phones,
                         device::NetworkType network, AsyncConfig config)
    : train_(train),
      test_(test),
      device_model_(std::move(device_model)),
      phones_(std::move(phones)),
      network_(network),
      config_(config),
      executor_(model_spec, config.parallelism) {
  if (phones_.empty()) throw std::invalid_argument("AsyncRunner: no devices");
  common::Rng init_rng(config_.seed);
  global_ = nn::build_model(model_spec, init_rng);
}

AsyncRunResult AsyncRunner::run(const data::Partition& partition) {
  if (partition.users() != phones_.size()) {
    throw std::invalid_argument("AsyncRunner::run: partition/device count mismatch");
  }
  const std::size_t n = phones_.size();

  std::vector<nn::Sgd> optimizers(n, nn::Sgd(config_.sgd));
  common::Rng rng(config_.seed ^ 0xA5A5A5A5ULL);

  // Event = a client finishing (or abandoning) a round trip at a simulated
  // instant. The comparator orders by time only, as before faults existed.
  struct Event {
    double time_s;
    std::size_t client;
    bool ok = true;            // trip produced a mergeable update
    std::size_t retries = 0;   // upload retries charged to this trip
    bool killed = false;       // battery died during this trip (permanent)
    FaultKind kind = FaultKind::kNone;  // the trip's fault verdict
    double soc = -1.0;         // state of charge after the trip (< 0 untracked)
    std::size_t owner = 0;     // whose share the trip trained (hedge: != client)
    bool operator>(const Event& other) const { return time_s > other.time_s; }
  };

  AsyncRunResult result;

  // Self-healing for the async loop: per-trip health tracking. There are no
  // rounds, so probation is served as a simulated-time wait before the
  // client's next pull; blacklisted clients stop re-pulling entirely. All
  // folds happen in phase 1 (serial), so the determinism contract holds.
  // Hedge trips need risk scores, so replication implies the tracker.
  const bool hedging = config_.replicate.enabled();
  std::optional<health::HealthTracker> tracker;
  if (config_.health_enabled || hedging) tracker.emplace(config_.health, n);
  std::optional<replication::ReplicationPlanner> hedger;
  if (hedging) hedger.emplace(config_.replicate, n);

  // Observability: phase 1 below is serial whatever the parallelism knob
  // says, and phase 2 merges apply in timeline order, so every event stream
  // is byte-identical at every width.
  obs::TraceWriter null_trace;
  obs::TraceWriter& trace = config_.trace ? *config_.trace : null_trace;
  if (trace.enabled()) {
    common::JsonObject ev;
    ev.field("ev", "run_start")
        .field("runner", "async")
        .field("clients", n)
        .field("horizon_s", config_.horizon_seconds)
        .field("seed", config_.seed)
        .field("deadline_s", config_.deadline_s)
        .field("faults", config_.faults.enabled);
    trace.write(ev);
  }

  // Phase 1 — simulate the merge timeline. Round-trip durations come from
  // the device simulators and the fault injector alone (they never depend on
  // trained parameters), so the full order of merges is known before any
  // training happens. That order is what makes the parallel phase
  // deterministic: merges are applied in timeline order no matter when their
  // training finishes. Failed trips burn the client's clock but never merge.
  std::vector<Event> merges;
  {
    std::vector<device::Device> devices;
    devices.reserve(n);
    for (device::PhoneModel phone : phones_) devices.emplace_back(phone, network_);

    const FaultInjector injector(config_.faults, config_.seed);
    const double deadline = config_.deadline_s;
    std::vector<device::Battery> batteries;
    if (injector.battery_enabled()) {
      batteries.reserve(n);
      for (std::size_t u = 0; u < n; ++u) {
        batteries.emplace_back(device::battery_of(phones_[u]), injector.initial_soc(u));
      }
    }
    std::vector<std::size_t> trips(n, 0);

    // One round trip of client u launched at `start_s`; the trip counter is
    // the injector's stream index, so draws are stable per (client, trip).
    // A hedge trip (`owner` != u) trains the hedged client's share on u's
    // device — same stream, same hazards, just the other share's compute.
    auto attempt = [&](std::size_t u, double start_s, std::size_t owner) -> Event {
      const auto& link = device::link_of(network_);
      RoundTimings timings;
      timings.download_s = device::download_seconds(link, device_model_.size_mb);
      timings.upload_s = device::upload_seconds(link, device_model_.size_mb);
      timings.baseline_s = devices[u].comm_seconds(device_model_);
      timings.compute_s =
          devices[u].train(device_model_, partition.user_indices[owner].size());
      timings.baseline_s += timings.compute_s;

      const std::size_t trip = trips[u]++;
      FaultOutcome out = injector.evaluate(trip, u, timings, deadline);
      Event event{.time_s = 0.0,
                  .client = u,
                  .ok = out.completed,
                  .retries = out.retries,
                  .killed = false,
                  .owner = owner};
      // A deadline-missed trip is abandoned at the deadline mark; every
      // other outcome (battery death included) occupies the client for its
      // full elapsed time.
      const double consumed =
          out.kind == FaultKind::kDeadlineMiss ? deadline : out.elapsed_s;
      if (injector.battery_enabled()) {
        batteries[u].drain(round_energy_wh(device::spec_of(phones_[u]), device_model_,
                                           timings.compute_s, network_,
                                           out.comm_scale));
        if (batteries[u].dead(config_.faults.battery_floor_soc)) {
          event.ok = false;
          event.killed = true;
          out.completed = false;
          out.kind = FaultKind::kBatteryDead;
        }
      }
      event.time_s = start_s + consumed;
      event.kind = out.kind;
      if (injector.battery_enabled()) event.soc = batteries[u].state_of_charge();

      if (trace.enabled()) {
        trace_client_trip(trace, trip, u, timings, out);
        const device::TracePoint point{
            .time_s = devices[u].clock_s(),
            .temp_c = devices[u].temperature_c(),
            .speed = devices[u].speed_factor(),
            .freq_ghz = devices[u].speed_factor() *
                        device::max_cpu_ghz(devices[u].spec())};
        trace_device_snapshot(trace, trip, u, point,
                              injector.battery_enabled()
                                  ? batteries[u].state_of_charge()
                                  : -1.0);
      }
      return event;
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    bool any_data = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (partition.user_indices[u].empty()) continue;
      any_data = true;
      if (injector.battery_enabled() &&
          batteries[u].dead(config_.faults.battery_floor_soc)) {
        ++result.battery_deaths;  // dead on arrival: never participates
        if (tracker) {
          (void)tracker->observe_trip(
              u, {.participated = true,
                  .fault = FaultKind::kBatteryDead,
                  .soc = batteries[u].state_of_charge()});
        }
        continue;
      }
      queue.push(attempt(u, 0.0, u));
    }
    if (!any_data) throw std::invalid_argument("AsyncRunner::run: empty partition");

    // Shares waiting for a hedge trip, oldest first; capped at the replica
    // budget so a dying client cannot monopolize the fleet.
    std::vector<std::size_t> hedge_queue;

    // A failed trip of a flagged at-risk client queues its share for one
    // hedge trip by the next free healthy host (oldest share first). All of
    // this runs in the serial timeline loop, so the hedge schedule is a pure
    // function of the simulated history.
    auto enqueue_hedge = [&](std::size_t owner) {
      if (!hedging || partition.user_indices[owner].empty()) return;
      if (hedge_queue.size() >= config_.replicate.budget_per_round) return;
      for (std::size_t w : hedge_queue) {
        if (w == owner) return;  // one outstanding hedge per share
      }
      if (hedger->risk_score(*tracker, owner) < config_.replicate.risk_threshold) {
        return;
      }
      hedge_queue.push_back(owner);
    };

    while (!queue.empty() && queue.top().time_s <= config_.horizon_seconds) {
      const Event event = queue.top();
      queue.pop();
      if (event.ok) {
        merges.push_back(event);
        if (event.owner != event.client) ++result.replica_merges;
      } else {
        ++result.dropped_updates;
      }
      result.retry_count += event.retries;
      if (event.killed) {
        ++result.battery_deaths;
        if (tracker) {
          (void)tracker->observe_trip(event.client,
                                      {.participated = true,
                                       .fault = FaultKind::kBatteryDead,
                                       .soc = event.soc});
        }
        // One hedge may still save the dead client's share (the last update
        // it will ever contribute).
        if (event.owner == event.client) enqueue_hedge(event.client);
        continue;  // permanently out of the fleet
      }
      double wait_s = 0.0;
      if (tracker) {
        wait_s = tracker->observe_trip(event.client,
                                       {.participated = true,
                                        .measured_s = 0.0,
                                        .fault = event.kind,
                                        .completed = event.ok,
                                        .retries = event.retries,
                                        .soc = event.soc});
        // Hedge only a client's own failed trip (a failed hedge trip is
        // spent, not requeued), after the failure has been folded into its
        // risk score.
        if (!event.ok && event.owner == event.client) enqueue_hedge(event.client);
        if (wait_s < 0.0) continue;  // blacklisted: stops re-pulling
        if (wait_s > 0.0) {
          result.probation_wait_seconds += wait_s;
          if (trace.enabled()) {
            common::JsonObject ev;
            ev.field("ev", "probation")
                .field("time_s", event.time_s)
                .field("client", event.client)
                .field("wait_s", wait_s);
            trace.write(ev);
          }
        }
      }
      // Client pulls the fresh model and starts its next round — after any
      // probation backoff the health tracker imposed. A healthy, unflagged
      // host drains the hedge queue first: one trip on the hedged share,
      // then back to its own loop.
      std::size_t next_owner = event.client;
      if (hedging && !hedge_queue.empty() && tracker->eligible(event.client) &&
          hedger->risk_score(*tracker, event.client) <
              config_.replicate.risk_threshold) {
        for (auto it = hedge_queue.begin(); it != hedge_queue.end(); ++it) {
          if (*it == event.client) continue;  // never hedge your own share
          next_owner = *it;
          hedge_queue.erase(it);
          break;
        }
      }
      if (next_owner != event.client) {
        ++result.replica_trips;
        if (trace.enabled()) {
          common::JsonObject ev;
          ev.field("ev", "hedge")
              .field("time_s", event.time_s + wait_s)
              .field("owner", next_owner)
              .field("host", event.client);
          trace.write(ev);
        }
      }
      queue.push(attempt(event.client, event.time_s + wait_s, next_owner));
    }
  }
  if (tracker) result.client_health = tracker->all();

  // Per-client chain of merge indices: training for merge k may start as
  // soon as the client's previous merge was applied.
  const std::size_t n_merges = merges.size();
  std::vector<std::size_t> next_merge(n_merges, n_merges);
  std::vector<std::size_t> first_merge(n, n_merges);
  {
    std::vector<std::size_t> last_seen(n, n_merges);
    for (std::size_t k = 0; k < n_merges; ++k) {
      const std::size_t u = merges[k].client;
      if (first_merge[u] == n_merges) {
        first_merge[u] = k;
      } else {
        next_merge[last_seen[u]] = k;
      }
      last_seen[u] = k;
    }
  }

  std::vector<float> global_params = global_.flat_params();

  // Phase 2 — pipelined training. A client trains from the parameters it
  // pulled at launch; merges that land while it is in flight do not affect
  // it (that is exactly the staleness the runner models). So each training
  // task is a pure function of its launch snapshot, and concurrently
  // in-flight clients train in parallel while merges apply in timeline
  // order. fork(k + 1) matches the serial stream: fork() never advances the
  // parent, so the index alone determines the stream.
  std::vector<std::vector<float>> locals(n_merges);
  std::vector<std::future<void>> pending(n_merges);
  auto launch = [&](std::size_t k, std::vector<float> pulled) {
    const std::size_t u = merges[k].client;
    // A hedge trip trains the hedged client's share with the host's
    // optimizer state — chains are keyed by host, so each optimizer is still
    // touched by exactly one in-flight task.
    const std::size_t o = merges[k].owner;
    common::Rng client_rng = rng.fork(k + 1);
    pending[k] = executor_.submit(
        [this, &partition, &optimizers, &locals, k, u, o, client_rng,
         pulled = std::move(pulled)](nn::Model& worker) mutable {
          worker.set_flat_params(pulled);
          (void)train_epoch(worker, optimizers[u], train_, partition.user_indices[o],
                            config_.batch_size, client_rng);
          locals[k] = worker.flat_params();
        });
  };
  for (std::size_t u = 0; u < n; ++u) {
    if (first_merge[u] < n_merges) launch(first_merge[u], global_params);
  }

  std::vector<std::size_t> base_version(n, 0);
  for (std::size_t k = 0; k < n_merges; ++k) {
    const std::size_t u = merges[k].client;
    pending[k].get();
    const std::vector<float> local = std::move(locals[k]);

    const std::size_t staleness = k - base_version[u];
    const double mix = config_.base_mix /
                       std::pow(1.0 + static_cast<double>(staleness), config_.damping);
    for (std::size_t i = 0; i < global_params.size(); ++i) {
      global_params[i] = static_cast<float>((1.0 - mix) * global_params[i] +
                                            mix * local[i]);
    }
    result.updates.push_back({merges[k].time_s, u, staleness, mix, merges[k].owner});
    result.elapsed_seconds = merges[k].time_s;
    base_version[u] = k + 1;

    if (trace.enabled()) {
      common::JsonObject ev;
      ev.field("ev", "merge")
          .field("time_s", merges[k].time_s)
          .field("client", u)
          .field("staleness", staleness)
          .field("mix", mix);
      // Only hedge merges carry the extra field, so replication-off traces
      // stay byte-identical.
      if (merges[k].owner != u) ev.field("owner", merges[k].owner);
      trace.write(ev);
    }

    if (next_merge[k] < n_merges) launch(next_merge[k], global_params);
  }

  global_.set_flat_params(global_params);
  result.final_accuracy = global_.accuracy(test_.images(), test_.labels());
  if (trace.enabled()) {
    common::JsonObject ev;
    ev.field("ev", "run_end")
        .field("final_accuracy", result.final_accuracy)
        .field("total_seconds", result.elapsed_seconds)
        .field("merged", result.updates.size())
        .field("dropped", result.dropped_updates)
        .field("retries", result.retry_count)
        .field("battery_deaths", result.battery_deaths);
    if (result.replica_trips > 0) {
      ev.field("replica_trips", result.replica_trips)
          .field("replica_merges", result.replica_merges);
    }
    trace.write(ev);
    trace.flush();
  }
  if (config_.metrics) record_run_metrics(*config_.metrics, result);
  return result;
}

}  // namespace fedsched::fl
