#include "fl/async_runner.hpp"

#include <cmath>
#include <queue>
#include <stdexcept>

#include "fl/trainer.hpp"

namespace fedsched::fl {

double AsyncRunResult::mean_staleness() const {
  if (updates.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& u : updates) sum += static_cast<double>(u.staleness);
  return sum / static_cast<double>(updates.size());
}

std::size_t AsyncRunResult::updates_from(std::size_t client) const {
  std::size_t count = 0;
  for (const auto& u : updates) count += (u.client == client);
  return count;
}

AsyncRunner::AsyncRunner(const data::Dataset& train, const data::Dataset& test,
                         nn::ModelSpec model_spec, device::ModelDesc device_model,
                         std::vector<device::PhoneModel> phones,
                         device::NetworkType network, AsyncConfig config)
    : train_(train),
      test_(test),
      device_model_(std::move(device_model)),
      phones_(std::move(phones)),
      network_(network),
      config_(config) {
  if (phones_.empty()) throw std::invalid_argument("AsyncRunner: no devices");
  common::Rng init_rng(config_.seed);
  global_ = nn::build_model(model_spec, init_rng);
  common::Rng worker_rng = init_rng.fork(1);
  worker_ = nn::build_model(model_spec, worker_rng);
}

AsyncRunResult AsyncRunner::run(const data::Partition& partition) {
  if (partition.users() != phones_.size()) {
    throw std::invalid_argument("AsyncRunner::run: partition/device count mismatch");
  }
  const std::size_t n = phones_.size();

  std::vector<device::Device> devices;
  devices.reserve(n);
  for (device::PhoneModel phone : phones_) devices.emplace_back(phone, network_);
  std::vector<nn::Sgd> optimizers(n, nn::Sgd(config_.sgd));
  common::Rng rng(config_.seed ^ 0xA5A5A5A5ULL);

  // Event = a client finishing its round-trip at a simulated instant.
  struct Event {
    double time_s;
    std::size_t client;
    bool operator>(const Event& other) const { return time_s > other.time_s; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;

  std::vector<float> global_params = global_.flat_params();
  // Each in-flight client carries the parameters it pulled and the merge
  // count at pull time (its update's staleness is measured against it).
  std::vector<std::vector<float>> pulled(n, global_params);
  std::vector<std::size_t> base_version(n, 0);
  std::size_t version = 0;

  // Kick off every client with non-empty data at t = 0.
  for (std::size_t u = 0; u < n; ++u) {
    if (partition.user_indices[u].empty()) continue;
    const double duration = devices[u].comm_seconds(device_model_) +
                            devices[u].train(device_model_,
                                             partition.user_indices[u].size());
    base_version[u] = version;
    queue.push({duration, u});
  }
  if (queue.empty()) throw std::invalid_argument("AsyncRunner::run: empty partition");

  AsyncRunResult result;
  std::size_t step = 0;
  while (!queue.empty() && queue.top().time_s <= config_.horizon_seconds) {
    const Event event = queue.top();
    queue.pop();
    const std::size_t u = event.client;

    // Train from the (possibly stale) parameters the client actually pulled.
    worker_.set_flat_params(pulled[u]);
    common::Rng client_rng = rng.fork(++step);
    (void)train_epoch(worker_, optimizers[u], train_, partition.user_indices[u],
                      config_.batch_size, client_rng);

    const std::size_t staleness = version - base_version[u];
    const double mix = config_.base_mix /
                       std::pow(1.0 + static_cast<double>(staleness), config_.damping);
    const auto local = worker_.flat_params();
    for (std::size_t i = 0; i < global_params.size(); ++i) {
      global_params[i] = static_cast<float>((1.0 - mix) * global_params[i] +
                                            mix * local[i]);
    }
    ++version;
    result.updates.push_back({event.time_s, u, staleness, mix});
    result.elapsed_seconds = event.time_s;

    // Client immediately pulls the fresh model and starts its next round.
    const double duration = devices[u].comm_seconds(device_model_) +
                            devices[u].train(device_model_,
                                             partition.user_indices[u].size());
    pulled[u] = global_params;
    base_version[u] = version;
    queue.push({event.time_s + duration, u});
  }

  global_.set_flat_params(global_params);
  result.final_accuracy = global_.accuracy(test_.images(), test_.labels());
  return result;
}

}  // namespace fedsched::fl
