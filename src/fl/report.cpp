#include "fl/report.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace fedsched::fl {

common::Table round_table(const RunResult& result) {
  common::Table table({"round", "round_s", "cumulative_s", "train_loss",
                       "test_accuracy"});
  for (const RoundRecord& record : result.rounds) {
    table.add_row({static_cast<long long>(record.round), record.round_seconds,
                   record.cumulative_seconds, record.mean_train_loss,
                   record.test_accuracy});
  }
  return table;
}

std::string round_timeline(const RoundRecord& record,
                           const std::vector<std::string>& client_names,
                           std::size_t width) {
  if (client_names.size() != record.client_seconds.size()) {
    throw std::invalid_argument("round_timeline: name count mismatch");
  }
  if (width == 0) throw std::invalid_argument("round_timeline: zero width");
  const double makespan = record.round_seconds;
  std::size_t name_width = 0;
  for (const auto& name : client_names) name_width = std::max(name_width, name.size());

  std::ostringstream os;
  os << "round " << record.round << " (" << makespan << " s)\n";
  for (std::size_t u = 0; u < client_names.size(); ++u) {
    const double t = record.client_seconds[u];
    os << "  " << client_names[u]
       << std::string(name_width - client_names[u].size(), ' ') << " |";
    if (t <= 0.0 || makespan <= 0.0) {
      os << " (idle)\n";
      continue;
    }
    const auto bars = std::max<std::size_t>(
        1, static_cast<std::size_t>(t / makespan * static_cast<double>(width)));
    const bool straggler = t >= makespan - 1e-12;
    os << std::string(bars, straggler ? '#' : '=') << ' ' << t << "s\n";
  }
  return os.str();
}

std::string convergence_csv(const RunResult& result) {
  std::ostringstream os;
  os << "cumulative_s,accuracy\n";
  for (const RoundRecord& record : result.rounds) {
    if (record.test_accuracy < 0.0) continue;
    os << record.cumulative_seconds << ',' << record.test_accuracy << '\n';
  }
  return os.str();
}

}  // namespace fedsched::fl
