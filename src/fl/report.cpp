#include "fl/report.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

namespace fedsched::fl {

common::Table round_table(const RunResult& result) {
  common::Table table({"round", "round_s", "cumulative_s", "train_loss",
                       "test_accuracy", "completed", "dropped", "retries"});
  for (const RoundRecord& record : result.rounds) {
    table.add_row({static_cast<long long>(record.round), record.round_seconds,
                   record.cumulative_seconds, record.mean_train_loss,
                   record.test_accuracy,
                   static_cast<long long>(record.completed_clients),
                   static_cast<long long>(record.dropped_clients),
                   static_cast<long long>(record.retry_count)});
  }
  return table;
}

std::string fault_summary(const RunResult& result) {
  std::size_t completed = 0, dropped = 0, retries = 0, skipped = 0;
  std::array<std::size_t, kFaultKindCount> by_kind{};
  for (const RoundRecord& record : result.rounds) {
    completed += record.completed_clients;
    dropped += record.dropped_clients;
    retries += record.retry_count;
    skipped += record.skipped;
    for (FaultKind kind : record.client_faults) {
      by_kind[static_cast<std::size_t>(kind)]++;
    }
  }
  std::ostringstream os;
  os << "faults: " << completed << " completed, " << dropped << " dropped, "
     << retries << " retries, " << skipped << " skipped rounds";
  const std::array<FaultKind, 4> kinds = {FaultKind::kCrash, FaultKind::kBatteryDead,
                                          FaultKind::kRetriesExhausted,
                                          FaultKind::kDeadlineMiss};
  // Every kind except kNone must appear in the rollup: grow `kinds` when the
  // enum grows.
  static_assert(kinds.size() + 1 == kFaultKindCount,
                "fault_summary: per-kind rollup out of sync with FaultKind");
  bool any = false;
  for (FaultKind kind : kinds) {
    const std::size_t count = by_kind[static_cast<std::size_t>(kind)];
    if (count == 0) continue;
    os << (any ? ", " : " (") << fault_name(kind) << '=' << count;
    any = true;
  }
  if (any) os << ')';
  if (!result.client_health.empty()) {
    std::size_t reschedules = 0, moved = 0;
    for (const RoundRecord& record : result.rounds) {
      reschedules += record.rescheduled;
      moved += record.moved_shards;
    }
    std::size_t probations = 0, excluded = 0;
    for (const auto& c : result.client_health) {
      probations += c.probations;
      excluded += c.status == health::ClientStatus::kBlacklisted ||
                  c.status == health::ClientStatus::kDead;
    }
    os << "\nrecovery: " << reschedules << " reschedules, " << moved
       << " shards moved, " << probations << " probations, " << excluded
       << " clients excluded";
  }
  std::size_t assigned = 0, won = 0, rescued = 0;
  for (const RoundRecord& record : result.rounds) {
    assigned += record.replicas_assigned;
    won += record.replicas_won;
    rescued += record.shares_rescued;
  }
  if (assigned > 0) {
    os << "\nreplication: " << assigned << " replicas, " << won
       << " first-finishes, " << rescued << " shares rescued, "
       << (assigned - won) << " wasted";
  }
  return os.str();
}

common::Table recovery_table(const RunResult& result,
                             const std::vector<std::string>& client_names) {
  if (result.client_health.empty()) {
    throw std::invalid_argument("recovery_table: run carries no health state");
  }
  if (client_names.size() != result.client_health.size()) {
    throw std::invalid_argument("recovery_table: name count mismatch");
  }
  common::Table table({"client", "status", "speed_mult", "faults", "retries",
                       "probations", "shards_reassigned"});
  for (std::size_t u = 0; u < result.client_health.size(); ++u) {
    const health::ClientHealth& c = result.client_health[u];
    table.add_row({client_names[u], std::string(health::status_name(c.status)),
                   c.speed_ewma, static_cast<long long>(c.total_faults),
                   static_cast<long long>(c.total_retries),
                   static_cast<long long>(c.probations),
                   static_cast<long long>(c.reassigned_shards)});
  }
  return table;
}

std::string round_timeline(const RoundRecord& record,
                           const std::vector<std::string>& client_names,
                           std::size_t width) {
  if (client_names.size() != record.client_seconds.size()) {
    throw std::invalid_argument("round_timeline: name count mismatch");
  }
  if (width == 0) throw std::invalid_argument("round_timeline: zero width");
  const double makespan = record.round_seconds;
  std::size_t name_width = 0;
  for (const auto& name : client_names) name_width = std::max(name_width, name.size());

  std::ostringstream os;
  os << "round " << record.round << " (" << makespan << " s)\n";
  for (std::size_t u = 0; u < client_names.size(); ++u) {
    const double t = record.client_seconds[u];
    os << "  " << client_names[u]
       << std::string(name_width - client_names[u].size(), ' ') << " |";
    if (t <= 0.0 || makespan <= 0.0) {
      os << " (idle)\n";
      continue;
    }
    // A deadline-dropped client stays busy past the recorded makespan (the
    // deadline), so the proportional bar must clamp to the width budget.
    const auto bars = std::min(
        width, std::max<std::size_t>(
                   1, static_cast<std::size_t>(t / makespan *
                                               static_cast<double>(width))));
    const FaultKind fault = u < record.client_faults.size() ? record.client_faults[u]
                                                            : FaultKind::kNone;
    if (fault != FaultKind::kNone) {
      os << std::string(bars, 'x') << ' ' << t << "s " << fault_name(fault) << "\n";
      continue;
    }
    const bool straggler = t >= makespan - 1e-12;
    os << std::string(bars, straggler ? '#' : '=') << ' ' << t << "s\n";
  }
  if (record.rescheduled) {
    os << "  >> rescheduled after this round (" << record.moved_shards
       << " shards moved)\n";
  }
  return os.str();
}

std::string convergence_csv(const RunResult& result) {
  std::ostringstream os;
  os << "cumulative_s,accuracy\n";
  for (const RoundRecord& record : result.rounds) {
    if (record.test_accuracy < 0.0) continue;
    os << record.cumulative_seconds << ',' << record.test_accuracy << '\n';
  }
  return os.str();
}

void trace_run_start(obs::TraceWriter& trace, std::string_view runner,
                     std::size_t clients, std::size_t rounds, std::uint64_t seed,
                     double deadline_s, bool faults_enabled) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "run_start")
      .field("runner", runner)
      .field("clients", clients)
      .field("rounds", rounds)
      .field("seed", seed)
      .field("deadline_s", deadline_s)
      .field("faults", faults_enabled);
  trace.write(ev);
}

void trace_round_start(obs::TraceWriter& trace, std::size_t round) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "round_start").field("round", round);
  trace.write(ev);
}

void trace_client_trip(obs::TraceWriter& trace, std::size_t round, std::size_t client,
                       const RoundTimings& timings, const FaultOutcome& outcome) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "client_trip")
      .field("round", round)
      .field("client", client)
      .field("download_s", timings.download_s)
      .field("compute_s", timings.compute_s)
      .field("upload_s", timings.upload_s)
      .field("elapsed_s", outcome.elapsed_s)
      .field("retries", outcome.retries)
      .field("fault", fault_name(outcome.kind))
      .field("completed", outcome.completed);
  trace.write(ev);
}

void trace_device_snapshot(obs::TraceWriter& trace, std::size_t round,
                           std::size_t client, const device::TracePoint& point,
                           double battery_soc) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "device")
      .field("round", round)
      .field("client", client)
      .field("time_s", point.time_s)
      .field("temp_c", point.temp_c)
      .field("speed", point.speed)
      .field("freq_ghz", point.freq_ghz);
  if (battery_soc >= 0.0) ev.field("soc", battery_soc);
  trace.write(ev);
}

void trace_round_end(obs::TraceWriter& trace, const RoundRecord& record) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "round_end")
      .field("round", record.round)
      .field("round_s", record.round_seconds)
      .field("cumulative_s", record.cumulative_seconds)
      .field("train_loss", record.mean_train_loss);
  if (record.test_accuracy >= 0.0) ev.field("test_accuracy", record.test_accuracy);
  ev.field("completed", record.completed_clients)
      .field("dropped", record.dropped_clients)
      .field("retries", record.retry_count)
      .field("skipped", record.skipped);
  trace.write(ev);
}

void trace_health(obs::TraceWriter& trace, std::size_t round,
                  const health::HealthTracker& tracker) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "health").field("round", round).field("eligible",
                                                       tracker.eligible_count());
  std::string statuses = "[";
  std::vector<double> mults;
  mults.reserve(tracker.clients());
  for (std::size_t u = 0; u < tracker.clients(); ++u) {
    if (u > 0) statuses += ',';
    statuses += common::json_quote(health::status_name(tracker.client(u).status));
    mults.push_back(tracker.cost_multiplier(u));
  }
  statuses += ']';
  ev.field_raw("status", statuses);
  ev.field("mult", std::span<const double>(mults));
  trace.write(ev);
}

void trace_reschedule(obs::TraceWriter& trace, std::size_t round,
                      health::ReschedulePolicy policy,
                      const health::ReplanOutcome& outcome) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "reschedule")
      .field("round", round)
      .field("policy", health::policy_name(policy))
      .field("moved_shards", outcome.moved_shards)
      .field("predicted_makespan_s", outcome.predicted_makespan)
      .field("eligible", outcome.eligible_clients)
      .field("shards",
             std::span<const std::size_t>(outcome.assignment.shards_per_user));
  trace.write(ev);
}

void trace_replication_plan(obs::TraceWriter& trace, std::size_t round,
                            const replication::RoundPlan& plan) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "replication").field("round", round).field("flagged", plan.flagged);
  std::vector<std::size_t> owners, hosts;
  std::vector<double> predicted;
  owners.reserve(plan.assignments.size());
  hosts.reserve(plan.assignments.size());
  predicted.reserve(plan.assignments.size());
  for (const replication::ReplicaAssignment& a : plan.assignments) {
    owners.push_back(a.owner);
    hosts.push_back(a.host);
    predicted.push_back(a.predicted_finish_s);
  }
  ev.field("owners", std::span<const std::size_t>(owners));
  ev.field("hosts", std::span<const std::size_t>(hosts));
  ev.field("predicted_s", std::span<const double>(predicted));
  trace.write(ev);
}

void trace_replica_result(obs::TraceWriter& trace, std::size_t round,
                          const replication::ShareResolution& resolution) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "replica")
      .field("round", round)
      .field("owner", resolution.owner)
      .field("arrived", resolution.arrived)
      .field("rescued", resolution.rescued)
      .field("winner", resolution.winner)
      .field("finish_s", resolution.finish_s)
      .field("replicas", resolution.replicas)
      .field("replicas_completed", resolution.replicas_completed);
  trace.write(ev);
}

void trace_checkpoint(obs::TraceWriter& trace, std::size_t completed,
                      double total_seconds) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "checkpoint")
      .field("round", completed)
      .field("total_seconds", total_seconds);
  trace.write(ev);
}

void trace_run_end(obs::TraceWriter& trace, double final_accuracy,
                   double total_seconds, std::size_t rounds) {
  if (!trace.enabled()) return;
  common::JsonObject ev;
  ev.field("ev", "run_end")
      .field("final_accuracy", final_accuracy)
      .field("total_seconds", total_seconds)
      .field("rounds", rounds);
  trace.write(ev);
}

namespace {

void record_round_metrics(obs::MetricsRegistry& metrics,
                          const std::vector<RoundRecord>& rounds) {
  for (const RoundRecord& record : rounds) {
    metrics.add("fl.rounds");
    metrics.add("fl.clients_completed", record.completed_clients);
    metrics.add("fl.clients_dropped", record.dropped_clients);
    metrics.add("fl.upload_retries", record.retry_count);
    if (record.skipped) metrics.add("fl.rounds_skipped");
    metrics.observe("fl.round_seconds", record.round_seconds);
    metrics.observe("fl.train_loss", record.mean_train_loss);
    for (double t : record.client_seconds) {
      if (t > 0.0) metrics.observe("fl.client_seconds", t);
    }
  }
}

}  // namespace

namespace {

// Recovery metrics are keyed only when self-healing ran, so recovery-off
// runs produce byte-identical metric dumps to older builds.
void record_recovery_metrics(obs::MetricsRegistry& metrics,
                             const std::vector<RoundRecord>& rounds,
                             const std::vector<health::ClientHealth>& client_health) {
  if (client_health.empty()) return;
  for (const RoundRecord& record : rounds) {
    if (record.rescheduled) {
      metrics.add("fl.reschedules");
      metrics.add("fl.moved_shards", record.moved_shards);
    }
  }
  std::size_t probations = 0, excluded = 0;
  for (const auto& c : client_health) {
    probations += c.probations;
    excluded += c.status != health::ClientStatus::kHealthy &&
                c.status != health::ClientStatus::kProbation;
  }
  metrics.add("fl.probations", probations);
  metrics.set_gauge("fl.clients_excluded", static_cast<double>(excluded));
}

// Replication metrics are keyed only when some round actually assigned a
// replica, so replication-off runs (and risk-free fleets) produce
// byte-identical metric dumps.
void record_replication_metrics(obs::MetricsRegistry& metrics,
                                const std::vector<RoundRecord>& rounds) {
  std::size_t assigned = 0, won = 0, rescued = 0;
  for (const RoundRecord& record : rounds) {
    assigned += record.replicas_assigned;
    won += record.replicas_won;
    rescued += record.shares_rescued;
  }
  if (assigned == 0) return;
  metrics.add("fl.replicas_assigned", assigned);
  metrics.add("fl.replicas_won", won);
  metrics.add("fl.replica_waste", assigned - won);
  metrics.add("fl.shares_rescued", rescued);
}

}  // namespace

void record_run_metrics(obs::MetricsRegistry& metrics, const RunResult& result) {
  record_round_metrics(metrics, result.rounds);
  record_recovery_metrics(metrics, result.rounds, result.client_health);
  record_replication_metrics(metrics, result.rounds);
  metrics.set_gauge("fl.final_accuracy", result.final_accuracy);
  metrics.set_gauge("fl.total_seconds", result.total_seconds);
}

void record_run_metrics(obs::MetricsRegistry& metrics, const GossipRunResult& result) {
  record_round_metrics(metrics, result.rounds);
  record_recovery_metrics(metrics, result.rounds, result.client_health);
  record_replication_metrics(metrics, result.rounds);
  metrics.set_gauge("fl.final_accuracy", result.mean_accuracy);
  metrics.set_gauge("fl.consensus_gap", result.consensus_gap);
  metrics.set_gauge("fl.total_seconds", result.total_seconds);
}

void record_run_metrics(obs::MetricsRegistry& metrics, const AsyncRunResult& result) {
  metrics.add("fl.merged_updates", result.updates.size());
  metrics.add("fl.dropped_updates", result.dropped_updates);
  metrics.add("fl.upload_retries", result.retry_count);
  metrics.add("fl.battery_deaths", result.battery_deaths);
  if (result.replica_trips > 0) {
    metrics.add("fl.replicas_assigned", result.replica_trips);
    metrics.add("fl.replicas_won", result.replica_merges);
    metrics.add("fl.replica_waste", result.replica_trips - result.replica_merges);
  }
  for (const AsyncUpdateRecord& update : result.updates) {
    metrics.observe("fl.staleness", static_cast<double>(update.staleness));
    metrics.observe("fl.mix_weight", update.mix_weight);
  }
  metrics.set_gauge("fl.final_accuracy", result.final_accuracy);
  metrics.set_gauge("fl.total_seconds", result.elapsed_seconds);
}

}  // namespace fedsched::fl
