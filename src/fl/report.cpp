#include "fl/report.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

namespace fedsched::fl {

common::Table round_table(const RunResult& result) {
  common::Table table({"round", "round_s", "cumulative_s", "train_loss",
                       "test_accuracy", "completed", "dropped", "retries"});
  for (const RoundRecord& record : result.rounds) {
    table.add_row({static_cast<long long>(record.round), record.round_seconds,
                   record.cumulative_seconds, record.mean_train_loss,
                   record.test_accuracy,
                   static_cast<long long>(record.completed_clients),
                   static_cast<long long>(record.dropped_clients),
                   static_cast<long long>(record.retry_count)});
  }
  return table;
}

std::string fault_summary(const RunResult& result) {
  std::size_t completed = 0, dropped = 0, retries = 0, skipped = 0;
  std::array<std::size_t, 5> by_kind{};
  for (const RoundRecord& record : result.rounds) {
    completed += record.completed_clients;
    dropped += record.dropped_clients;
    retries += record.retry_count;
    skipped += record.skipped;
    for (FaultKind kind : record.client_faults) {
      by_kind[static_cast<std::size_t>(kind)]++;
    }
  }
  std::ostringstream os;
  os << "faults: " << completed << " completed, " << dropped << " dropped, "
     << retries << " retries, " << skipped << " skipped rounds";
  const std::array<FaultKind, 4> kinds = {FaultKind::kCrash, FaultKind::kBatteryDead,
                                          FaultKind::kRetriesExhausted,
                                          FaultKind::kDeadlineMiss};
  bool any = false;
  for (FaultKind kind : kinds) {
    const std::size_t count = by_kind[static_cast<std::size_t>(kind)];
    if (count == 0) continue;
    os << (any ? ", " : " (") << fault_name(kind) << '=' << count;
    any = true;
  }
  if (any) os << ')';
  return os.str();
}

std::string round_timeline(const RoundRecord& record,
                           const std::vector<std::string>& client_names,
                           std::size_t width) {
  if (client_names.size() != record.client_seconds.size()) {
    throw std::invalid_argument("round_timeline: name count mismatch");
  }
  if (width == 0) throw std::invalid_argument("round_timeline: zero width");
  const double makespan = record.round_seconds;
  std::size_t name_width = 0;
  for (const auto& name : client_names) name_width = std::max(name_width, name.size());

  std::ostringstream os;
  os << "round " << record.round << " (" << makespan << " s)\n";
  for (std::size_t u = 0; u < client_names.size(); ++u) {
    const double t = record.client_seconds[u];
    os << "  " << client_names[u]
       << std::string(name_width - client_names[u].size(), ' ') << " |";
    if (t <= 0.0 || makespan <= 0.0) {
      os << " (idle)\n";
      continue;
    }
    const auto bars = std::max<std::size_t>(
        1, static_cast<std::size_t>(t / makespan * static_cast<double>(width)));
    const bool straggler = t >= makespan - 1e-12;
    os << std::string(bars, straggler ? '#' : '=') << ' ' << t << "s\n";
  }
  return os.str();
}

std::string convergence_csv(const RunResult& result) {
  std::ostringstream os;
  os << "cumulative_s,accuracy\n";
  for (const RoundRecord& record : result.rounds) {
    if (record.test_accuracy < 0.0) continue;
    os << record.cumulative_seconds << ',' << record.test_accuracy << '\n';
  }
  return os.str();
}

}  // namespace fedsched::fl
