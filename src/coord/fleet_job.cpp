#include "coord/fleet_job.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "coord/chaos/chaos.hpp"
#include "device/model_desc.hpp"
#include "fl/checkpoint/codec.hpp"
#include "fleet/event_sim.hpp"
#include "fleet/fleet.hpp"
#include "sched/bucketed.hpp"

namespace fedsched::coord {

namespace fc = fl::checkpoint;

namespace {

constexpr std::uint32_t kFleetMagic = 0x46534631;  // "FSF1"
constexpr std::uint32_t kFleetVersion = 1;

struct FleetCheckpoint {
  std::size_t rounds_completed = 0;
  fleet::FleetState state;
  std::vector<FleetRoundSummary> summaries;
  std::string trace_prefix;
  std::size_t trace_events = 0;
};

void put_summary(fc::PayloadWriter& out, const FleetRoundSummary& s) {
  out.put_u64(s.round);
  out.put_u64(s.participants);
  out.put_u64(s.completed);
  out.put_u64(s.dropped_crash);
  out.put_u64(s.dropped_deadline);
  out.put_u64(s.dropped_stale);
  out.put_u64(s.battery_deaths);
  out.put_u64(s.survivor_shards);
  out.put(s.threshold_s);
  out.put(s.makespan_s);
  out.put(s.energy_wh);
}

FleetRoundSummary get_summary(fc::PayloadReader& in) {
  FleetRoundSummary s;
  s.round = static_cast<std::size_t>(in.get_u64());
  s.participants = static_cast<std::size_t>(in.get_u64());
  s.completed = static_cast<std::size_t>(in.get_u64());
  s.dropped_crash = static_cast<std::size_t>(in.get_u64());
  s.dropped_deadline = static_cast<std::size_t>(in.get_u64());
  s.dropped_stale = static_cast<std::size_t>(in.get_u64());
  s.battery_deaths = static_cast<std::size_t>(in.get_u64());
  s.survivor_shards = static_cast<std::size_t>(in.get_u64());
  s.threshold_s = in.get<double>();
  s.makespan_s = in.get<double>();
  s.energy_wh = in.get<double>();
  return s;
}

void save_fleet_checkpoint(const FleetCheckpoint& ckpt, const std::string& path,
                           chaos::ChaosInjector* chaos) {
  fc::PayloadWriter out;
  out.put_u64(ckpt.rounds_completed);

  const fleet::FleetState& s = ckpt.state;
  out.put_vec(s.device_model);
  out.put_vec(s.network);
  out.put_vec(s.speed_factor);
  out.put_vec(s.base_s);
  out.put_vec(s.per_sample_s);
  out.put_vec(s.comm_s);
  out.put_vec(s.battery_soc);
  out.put_vec(s.battery_capacity_wh);
  out.put_vec(s.train_power_w);
  out.put_vec(s.comm_energy_wh);
  out.put_vec(s.temp_c);
  out.put_vec(s.capacity_shards);
  out.put_vec(s.alive);

  out.put_u64(ckpt.summaries.size());
  for (const FleetRoundSummary& r : ckpt.summaries) put_summary(out, r);

  out.put_u64(ckpt.trace_events);
  out.put_bytes(ckpt.trace_prefix);

  const std::uint64_t op = chaos != nullptr ? chaos->begin_write() : 0;
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kBeforeTmp, path);
  }
  const std::string tmp = path + ".tmp";
  {
    const std::filesystem::path p(tmp);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) throw std::runtime_error("fleet checkpoint: cannot open " + tmp);
    const std::string sealed = fc::seal(kFleetMagic, kFleetVersion, out.bytes());
    file.write(sealed.data(), static_cast<std::streamsize>(sealed.size()));
    if (!file) throw std::runtime_error("fleet checkpoint: write failed for " + tmp);
  }
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kAfterTmp, path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("fleet checkpoint: cannot rename " + tmp + " -> " +
                             path + ": " + ec.message());
  }
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kAfterRename, path);
  }
}

FleetCheckpoint load_fleet_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fleet checkpoint: cannot open " + path);
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error("fleet checkpoint: read failed for " + path);
  const std::string_view body =
      fc::open(kFleetMagic, kFleetVersion, file, "fleet checkpoint: " + path,
               "fedsched fleet checkpoint");
  fc::PayloadReader payload(body, "fleet checkpoint: " + path);

  FleetCheckpoint ckpt;
  ckpt.rounds_completed = static_cast<std::size_t>(payload.get_u64());

  fleet::FleetState& s = ckpt.state;
  s.device_model = payload.get_vec<std::uint8_t>();
  s.network = payload.get_vec<std::uint8_t>();
  s.speed_factor = payload.get_vec<double>();
  s.base_s = payload.get_vec<double>();
  s.per_sample_s = payload.get_vec<double>();
  s.comm_s = payload.get_vec<double>();
  s.battery_soc = payload.get_vec<double>();
  s.battery_capacity_wh = payload.get_vec<double>();
  s.train_power_w = payload.get_vec<double>();
  s.comm_energy_wh = payload.get_vec<double>();
  s.temp_c = payload.get_vec<double>();
  s.capacity_shards = payload.get_vec<std::uint32_t>();
  s.alive = payload.get_vec<std::uint8_t>();

  ckpt.summaries.resize(payload.get_count(1));
  for (FleetRoundSummary& r : ckpt.summaries) r = get_summary(payload);

  ckpt.trace_events = static_cast<std::size_t>(payload.get_u64());
  ckpt.trace_prefix = payload.get_bytes();
  payload.expect_exhausted();
  return ckpt;
}

}  // namespace

FleetPlan plan_fleet_round(const std::string& policy,
                           const sched::LinearCosts& costs,
                           std::size_t total_shards, std::size_t buckets,
                           obs::TraceWriter* trace) {
  FleetPlan plan;
  if (policy == "fed-lbap") {
    auto planned = sched::fed_lbap_bucketed(costs, total_shards, buckets, trace);
    plan.threshold_s = planned.threshold_seconds;
    plan.assignment = std::move(planned.assignment);
  } else if (policy == "fed-minavg") {
    auto planned = sched::fed_minavg_bucketed(costs, total_shards, buckets, trace);
    plan.threshold_s = planned.makespan_seconds;
    plan.assignment = std::move(planned.assignment);
  } else {
    throw std::runtime_error("fleet job: unknown policy '" + policy + "'");
  }
  return plan;
}

FleetStepOutcome run_fleet_step(const FleetRunSpec& spec,
                                const std::string& ckpt_path,
                                const std::string& trace_path,
                                std::size_t completed_rounds,
                                chaos::ChaosInjector* chaos) {
  if (completed_rounds >= spec.rounds) {
    throw std::runtime_error("fleet job: run already complete");
  }
  if (chaos != nullptr && !chaos->enabled()) chaos = nullptr;
  obs::TraceWriter trace = obs::TraceWriter::to_file(trace_path);
  trace.enable_capture();

  FleetCheckpoint ckpt;
  if (completed_rounds == 0) {
    const device::ModelDesc& desc = spec.model == "VGG6" ? device::vgg6_desc()
                                                         : device::lenet_desc();
    const fleet::FleetMix mix =
        spec.mix.empty() ? fleet::FleetMix{} : fleet::parse_fleet_mix(spec.mix);
    ckpt.state =
        fleet::FleetGenerator(mix, desc, spec.seed).generate(spec.fleet_size, &trace);
  } else {
    ckpt = load_fleet_checkpoint(ckpt_path);
    if (ckpt.rounds_completed == completed_rounds + 1) {
      // Torn recovery state: a crash between the checkpoint rename and the
      // meta write lost the step's acknowledgement, but the checkpoint
      // already holds the completed round. Replay its trace and report the
      // step done instead of re-simulating (which would double-apply it).
      trace.write_raw(ckpt.trace_prefix, ckpt.trace_events);
      trace.flush();
      FleetStepOutcome replayed;
      replayed.rounds_completed = ckpt.rounds_completed;
      replayed.done = ckpt.rounds_completed == spec.rounds;
      return replayed;
    }
    if (ckpt.rounds_completed != completed_rounds) {
      throw std::runtime_error("fleet job: checkpoint round mismatch");
    }
    trace.write_raw(ckpt.trace_prefix, ckpt.trace_events);
  }

  fleet::FleetSimConfig config;
  config.shard_size = spec.shard;
  config.deadline_s = spec.deadline_s;
  config.dropout_prob = spec.dropout;
  config.battery_floor_soc = spec.battery_floor;
  config.parallelism = spec.parallelism;
  config.seed = spec.seed;
  fleet::FleetSimulator sim(std::move(ckpt.state), config);

  // Replan every round — battery deaths shrink the schedulable fleet — then
  // simulate it, exactly the `fedsched_cli fleet` loop body.
  const sched::LinearCosts costs = fleet::linear_costs(sim.state(), spec.shard);
  const FleetPlan plan = plan_fleet_round(spec.policy, costs,
                                          spec.effective_total_shards(),
                                          spec.buckets, &trace);
  const fleet::FleetRoundResult r =
      sim.run_round(plan.assignment.shards_per_user, completed_rounds, &trace);
  trace.flush();

  FleetRoundSummary summary;
  summary.round = r.round;
  summary.participants = r.participants;
  summary.completed = r.completed;
  summary.dropped_crash = r.dropped_crash;
  summary.dropped_deadline = r.dropped_deadline;
  summary.dropped_stale = r.dropped_stale;
  summary.battery_deaths = r.battery_deaths;
  summary.survivor_shards = r.survivor_shards;
  summary.threshold_s = plan.threshold_s;
  summary.makespan_s = r.makespan_s;
  summary.energy_wh = r.energy_wh;
  ckpt.summaries.push_back(summary);

  ckpt.state = sim.state();
  ckpt.rounds_completed = completed_rounds + 1;
  ckpt.trace_prefix = trace.captured();
  ckpt.trace_events = trace.captured_events();
  save_fleet_checkpoint(ckpt, ckpt_path, chaos);

  FleetStepOutcome out;
  out.rounds_completed = ckpt.rounds_completed;
  out.done = ckpt.rounds_completed == spec.rounds;
  return out;
}

std::vector<FleetRoundSummary> load_fleet_summaries(const std::string& ckpt_path) {
  return load_fleet_checkpoint(ckpt_path).summaries;
}

std::string fleet_result_json(const FleetRunSpec& spec,
                              const std::vector<FleetRoundSummary>& rounds) {
  std::string arr = "[";
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    const FleetRoundSummary& r = rounds[i];
    common::JsonObject ro;
    ro.field("round", r.round)
        .field("participants", r.participants)
        .field("completed", r.completed)
        .field("dropped_crash", r.dropped_crash)
        .field("dropped_deadline", r.dropped_deadline)
        .field("dropped_stale", r.dropped_stale)
        .field("battery_deaths", r.battery_deaths)
        .field("survivor_shards", r.survivor_shards)
        .field("threshold_s", r.threshold_s)
        .field("makespan_s", r.makespan_s)
        .field("energy_wh", r.energy_wh);
    if (i > 0) arr += ",";
    arr += ro.str();
  }
  arr += "]";
  common::JsonObject o;
  o.field("kind", "fleet")
      .field("fleet_size", spec.fleet_size)
      .field("rounds", rounds.size())
      .field("seed", spec.seed)
      .field_raw("round_records", arr);
  return o.str();
}

}  // namespace fedsched::coord
