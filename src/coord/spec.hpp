#pragma once
// Run specifications the coordinator accepts over the wire.
//
// v1 supports the two run kinds that exercise both fidelity tiers: `train`
// (the synchronous FedAvg testbed runner, fl/runner.hpp) and `fleet` (the
// discrete-event fleet simulator, fleet/event_sim.hpp). Each spec carries
// exactly the knobs of the matching CLI subcommand's deterministic core, so
// a run submitted to the coordinator produces RunResult values and trace
// bytes identical to the same spec driven through `fedsched_cli train
// --checkpoint-every 1` / `fedsched_cli fleet` — the coordinator's
// byte-identity contract (docs/API.md "Coordinator service"). The async and
// gossip runners are not yet spec-addressable; they remain one-shot CLI/
// library runs until a later protocol version.
//
// parse_run_spec validates field kinds and ranges and throws
// std::runtime_error on anything malformed — a rejected spec never touches
// coordinator state.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "common/json.hpp"

namespace fedsched::coord {

/// Testbed FedAvg run — mirrors `fedsched_cli train`'s deterministic core.
struct TrainRunSpec {
  std::string dataset = "mnist";    // mnist | cifar
  int testbed = 1;                  // 1 | 2 | 3
  std::string model = "LeNet";      // LeNet | VGG6
  std::size_t samples = 1200;
  std::string policy = "fed-lbap";  // fed-lbap | equal | prop | random
  std::size_t rounds = 10;
  std::uint64_t seed = 1;
  /// Host worker threads inside the run (results bit-identical at any
  /// value); coordinator runs default to serial so multiplexed runs do not
  /// oversubscribe the host.
  std::size_t parallelism = 1;
  bool evaluate_each_round = false;
};

/// Fleet-tier run — mirrors `fedsched_cli fleet`.
struct FleetRunSpec {
  std::size_t fleet_size = 10'000;
  std::string mix;                  // fleet::parse_fleet_mix syntax; "" = default
  std::string model = "LeNet";      // LeNet | VGG6
  std::size_t shard = 100;
  std::size_t buckets = 64;
  std::size_t rounds = 1;
  std::size_t total_shards = 0;     // 0 = 2 * fleet_size (the CLI default)
  std::string policy = "fed-lbap";  // fed-lbap | fed-minavg (bucketed)
  double deadline_s = std::numeric_limits<double>::infinity();
  double dropout = 0.0;
  double battery_floor = 0.05;
  std::uint64_t seed = 1;
  std::size_t parallelism = 1;

  [[nodiscard]] std::size_t effective_total_shards() const noexcept {
    return total_shards == 0 ? 2 * fleet_size : total_shards;
  }
};

enum class RunKind { kTrain, kFleet };

struct RunSpec {
  std::string id;
  RunKind kind = RunKind::kTrain;
  TrainRunSpec train;
  FleetRunSpec fleet;

  /// Simulated clients this run keeps resident while active — the quantity
  /// admission control budgets against.
  [[nodiscard]] std::size_t resident_clients() const;
  [[nodiscard]] std::size_t total_rounds() const {
    return kind == RunKind::kTrain ? train.rounds : fleet.rounds;
  }
};

[[nodiscard]] const char* run_kind_name(RunKind kind);

/// Parse and validate a spec object ({"id": ..., "kind": "train"|"fleet",
/// ...}). Unknown kinds, wrong field types, and out-of-range values throw
/// std::runtime_error.
[[nodiscard]] RunSpec parse_run_spec(const common::JsonValue& v);

/// Canonical JSON rendering; parse_run_spec round-trips it.
[[nodiscard]] std::string run_spec_json(const RunSpec& spec);

}  // namespace fedsched::coord
