#include "coord/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "coord/wire.hpp"

namespace fedsched::coord {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("coord server: " + what + ": " +
                           std::strerror(errno));
}

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  Fd() = default;
  explicit Fd(int f) : fd(f) {}
  Fd(Fd&& other) noexcept : fd(other.fd) { other.fd = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      if (fd >= 0) ::close(fd);
      fd = other.fd;
      other.fd = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
};

sockaddr_un make_addr(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("coord server: socket path too long: " +
                             socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  return addr;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl O_NONBLOCK");
  }
}

void set_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0) {
    sys_fail("fcntl blocking");
  }
}

void set_socket_timeout(int fd, int option, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    sys_fail("setsockopt timeout");
  }
}

void sleep_seconds(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

/// Send every byte, polling out of EAGAIN on non-blocking sockets, bounded
/// by `timeout_s` of cumulative waiting. MSG_NOSIGNAL: a peer that vanished
/// mid-reply must surface as EPIPE, not SIGPIPE.
void send_all(int fd, std::string_view bytes, double timeout_s = 30.0) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{};
        p.fd = fd;
        p.events = POLLOUT;
        const int rc = ::poll(&p, 1, static_cast<int>(timeout_s * 1000.0));
        if (rc == 0) throw std::runtime_error("coord server: send timed out");
        if (rc < 0 && errno != EINTR) sys_fail("poll send");
        continue;
      }
      sys_fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Apply the injector's plan to one reply frame. Returns false when the
/// connection must be closed afterwards (truncate / close actions).
bool send_reply_frame(int fd, const std::string& frame,
                      chaos::ChaosInjector* chaos, ServeStats& stats) {
  if (chaos == nullptr) {
    send_all(fd, frame);
    return true;
  }
  const chaos::FramePlan plan = chaos->plan_frame(frame.size());
  switch (plan.action) {
    case chaos::FrameAction::kNone:
      send_all(fd, frame);
      return true;
    case chaos::FrameAction::kDelay:
      ++stats.chaos_delayed;
      sleep_seconds(plan.delay_s);
      send_all(fd, frame);
      return true;
    case chaos::FrameAction::kSplit:
      ++stats.chaos_split;
      send_all(fd, std::string_view(frame).substr(0, plan.boundary));
      sleep_seconds(plan.delay_s);
      send_all(fd, std::string_view(frame).substr(plan.boundary));
      return true;
    case chaos::FrameAction::kTruncate:
      ++stats.chaos_truncated;
      send_all(fd, std::string_view(frame).substr(0, plan.boundary));
      return false;
    case chaos::FrameAction::kClose:
      ++stats.chaos_closed;
      return false;
  }
  return true;
}

struct Connection {
  Fd fd;
  FrameBuffer buffer;
  Clock::time_point last_activity;
  Clock::time_point frame_start;  // when the current partial frame began
  bool in_frame = false;

  Connection(int f, Clock::time_point now) : fd(f), last_activity(now) {}
};

void emit_drop(Coordinator& coordinator, const char* reason,
               const char* counter) {
  common::JsonObject ev;
  ev.field("ev", "coord_conn_drop").field("reason", reason);
  coordinator.record_event(ev, counter);
}

}  // namespace

SocketPathGuard::~SocketPathGuard() {
  if (!path_.empty()) ::unlink(path_.c_str());
}

double RetryPolicy::backoff_before_attempt(std::size_t attempt) const {
  if (attempt == 0) return 0.0;
  double backoff = backoff_base_s;
  for (std::size_t i = 1; i < attempt && backoff < backoff_max_s; ++i) {
    backoff *= 2.0;
  }
  return backoff < backoff_max_s ? backoff : backoff_max_s;
}

void serve(Coordinator& coordinator, const std::string& socket_path) {
  serve(coordinator, socket_path, ServeOptions{}, nullptr);
}

void serve(Coordinator& coordinator, const std::string& socket_path,
           const ServeOptions& options, ServeStats* stats_out) {
  ServeStats local_stats;
  ServeStats& stats = stats_out != nullptr ? *stats_out : local_stats;
  chaos::ChaosInjector* chaos =
      (options.chaos != nullptr && options.chaos->enabled()) ? options.chaos
                                                             : nullptr;

  const sockaddr_un addr = make_addr(socket_path);
  Fd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (listener.fd < 0) sys_fail("socket");
  ::unlink(socket_path.c_str());  // replace a stale socket from a dead server
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    sys_fail("bind " + socket_path);
  }
  // From here the path exists on disk; the guard removes it on every exit —
  // normal shutdown, chaos crash, or an exception out of the loop.
  SocketPathGuard socket_guard(socket_path);
  if (::listen(listener.fd, 64) != 0) sys_fail("listen");
  set_nonblocking(listener.fd);

  std::vector<std::unique_ptr<Connection>> conns;
  bool shutting_down = false;
  while (!shutting_down) {
    if (coordinator.chaos_crashed()) return;  // simulated process death

    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 1);
    {
      pollfd p{};
      p.fd = listener.fd;
      p.events = POLLIN;
      fds.push_back(p);
    }
    for (const auto& conn : conns) {
      pollfd p{};
      p.fd = conn->fd.fd;
      p.events = POLLIN;
      fds.push_back(p);
    }
    const int rc = ::poll(fds.data(), fds.size(), options.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    const Clock::time_point now = Clock::now();

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int conn_fd = ::accept(listener.fd, nullptr, nullptr);
        if (conn_fd < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
          sys_fail("accept");
        }
        set_nonblocking(conn_fd);
        conns.push_back(std::make_unique<Connection>(conn_fd, now));
        ++stats.connections;
      }
    }

    // Bound by the polled set, not conns.size(): the accept loop above may
    // have appended connections that have no pollfd this tick — they are
    // picked up by the next poll round.
    for (std::size_t i = 0; i + 1 < fds.size() && !shutting_down; ++i) {
      Connection& conn = *conns[i];
      bool dead = false;
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[4096];
        while (!dead && !shutting_down) {
          const ssize_t n = ::recv(conn.fd.fd, chunk, sizeof(chunk), 0);
          if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            dead = true;
            break;
          }
          if (n == 0) {  // peer closed
            dead = true;
            break;
          }
          conn.last_activity = now;
          if (!conn.in_frame) {
            conn.in_frame = true;
            conn.frame_start = now;
          }
          try {
            conn.buffer.feed(
                std::string_view(chunk, static_cast<std::size_t>(n)));
            // take_frame() already validated the frame (header, length,
            // checksum) — a corrupt stream throws here, before any verb
            // dispatch runs.
            while (auto payload = conn.buffer.take_frame()) {
              ++stats.frames;
              const std::string reply =
                  encode_frame(coordinator.handle_request_json(*payload));
              if (!send_reply_frame(conn.fd.fd, reply, chaos, stats)) {
                dead = true;
                break;
              }
              if (coordinator.shutdown_requested()) shutting_down = true;
            }
            if (conn.buffer.pending_bytes() == 0) conn.in_frame = false;
          } catch (const std::exception& ex) {
            // Corrupt byte stream or send failure: best-effort error reply,
            // drop the connection. Decode-before-dispatch means the
            // coordinator state is untouched.
            ++stats.protocol_drops;
            emit_drop(coordinator, "protocol", "coord.conn_protocol_drops");
            try {
              common::JsonObject o;
              o.field("ok", false).field("error", ex.what());
              send_all(conn.fd.fd, encode_frame(o.str()), 1.0);
            } catch (...) {
            }
            dead = true;
          }
        }
      }
      if (!dead && !shutting_down) {
        const double frame_age =
            std::chrono::duration<double>(now - conn.frame_start).count();
        const double idle =
            std::chrono::duration<double>(now - conn.last_activity).count();
        if (conn.in_frame && frame_age > options.read_deadline_s) {
          // Slow-loris: bytes may still trickle in, but the frame they
          // belong to is older than the deadline.
          ++stats.deadline_drops;
          emit_drop(coordinator, "read_deadline", "coord.conn_deadline_drops");
          dead = true;
        } else if (!conn.in_frame && idle > options.idle_timeout_s) {
          ++stats.idle_drops;
          emit_drop(coordinator, "idle_timeout", "coord.conn_idle_drops");
          dead = true;
        }
      }
      if (dead) {
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        --i;
      }
    }
  }
}

namespace {

std::string request_once(const std::string& socket_path,
                         const std::string& request_json,
                         const RetryPolicy& policy) {
  const sockaddr_un addr = make_addr(socket_path);
  Fd conn(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (conn.fd < 0) sys_fail("socket");

  // Bounded connect: non-blocking + poll for writability + SO_ERROR.
  set_nonblocking(conn.fd);
  if (::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      sys_fail("connect " + socket_path);
    }
    pollfd p{};
    p.fd = conn.fd;
    p.events = POLLOUT;
    const int rc =
        ::poll(&p, 1, static_cast<int>(policy.connect_timeout_s * 1000.0));
    if (rc == 0) {
      throw std::runtime_error("coord client: connect to " + socket_path +
                               " timed out");
    }
    if (rc < 0) sys_fail("poll connect");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      sys_fail("getsockopt SO_ERROR");
    }
    if (err != 0) {
      errno = err;
      sys_fail("connect " + socket_path);
    }
  }
  set_blocking(conn.fd);
  set_socket_timeout(conn.fd, SO_RCVTIMEO, policy.recv_timeout_s);
  set_socket_timeout(conn.fd, SO_SNDTIMEO, policy.recv_timeout_s);

  send_all(conn.fd, encode_frame(request_json), policy.recv_timeout_s);

  FrameBuffer buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("coord client: reply from " + socket_path +
                                 " timed out");
      }
      sys_fail("recv");
    }
    if (n == 0) {
      throw std::runtime_error("coord server: connection closed before reply");
    }
    buffer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    if (auto frame = buffer.take_frame()) return std::string(*frame);
  }
}

}  // namespace

std::string request(const std::string& socket_path,
                    const std::string& request_json) {
  RetryPolicy once;
  once.attempts = 1;
  return request_with_retry(socket_path, request_json, once);
}

std::string request_with_retry(const std::string& socket_path,
                               const std::string& request_json,
                               const RetryPolicy& policy) {
  const std::size_t attempts = policy.attempts > 0 ? policy.attempts : 1;
  std::string last_error;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    sleep_seconds(policy.backoff_before_attempt(attempt));
    try {
      return request_once(socket_path, request_json, policy);
    } catch (const std::exception& ex) {
      last_error = ex.what();
    }
  }
  if (attempts == 1) throw std::runtime_error(last_error);
  throw std::runtime_error(last_error + " (after " + std::to_string(attempts) +
                           " attempts)");
}

std::string submit_with_retry(const std::string& socket_path,
                              const RunSpec& spec, const RetryPolicy& policy) {
  common::JsonObject req;
  req.field("verb", "submit").field_raw("spec", run_spec_json(spec));
  const std::string request_json = req.str();
  const std::size_t attempts = policy.attempts > 0 ? policy.attempts : 1;
  std::string last_error;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    sleep_seconds(policy.backoff_before_attempt(attempt));
    std::string reply_json;
    try {
      reply_json = request_once(socket_path, request_json, policy);
    } catch (const std::exception& ex) {
      last_error = ex.what();
      continue;
    }
    const common::JsonValue reply = common::json_parse(reply_json);
    if (reply.get_bool("ok", false)) return reply_json;
    const std::string error = reply.get_string("error", "");
    if (attempt > 0 && error.find("duplicate run id") != std::string::npos) {
      // An earlier attempt landed and only its ack was lost: the run is
      // registered, so its status reply is this submit's success document.
      const std::string status_reply = request_with_retry(
          socket_path,
          common::JsonObject().field("verb", "status").field("id", spec.id).str(),
          policy);
      if (common::json_parse(status_reply).get_bool("ok", false)) {
        return status_reply;
      }
    }
    return reply_json;  // genuine rejection — retrying cannot help
  }
  throw std::runtime_error("coord client: submit of '" + spec.id +
                           "' failed after " + std::to_string(attempts) +
                           " attempts: " + last_error);
}

}  // namespace fedsched::coord
