#include "coord/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "coord/wire.hpp"

namespace fedsched::coord {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("coord server: " + what + ": " +
                           std::strerror(errno));
}

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  Fd() = default;
  explicit Fd(int f) : fd(f) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
};

sockaddr_un make_addr(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("coord server: socket path too long: " +
                             socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  return addr;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Drain the connection through a FrameBuffer, answering each complete
/// frame. Returns false once the peer closes; throws wire errors upward.
bool serve_connection(int fd, Coordinator& coordinator) {
  FrameBuffer buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("recv");
    }
    if (n == 0) return true;  // peer closed
    buffer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    // take_frame() already validated the frame (header, length, checksum) —
    // a corrupt stream throws here, before any verb dispatch runs.
    while (auto payload = buffer.take_frame()) {
      send_all(fd, encode_frame(coordinator.handle_request_json(*payload)));
      if (coordinator.shutdown_requested()) return false;
    }
  }
}

}  // namespace

void serve(Coordinator& coordinator, const std::string& socket_path) {
  const sockaddr_un addr = make_addr(socket_path);
  Fd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (listener.fd < 0) sys_fail("socket");
  ::unlink(socket_path.c_str());  // replace a stale socket from a dead server
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    sys_fail("bind " + socket_path);
  }
  if (::listen(listener.fd, 16) != 0) sys_fail("listen");

  bool keep_serving = true;
  while (keep_serving) {
    Fd conn(::accept(listener.fd, nullptr, nullptr));
    if (conn.fd < 0) {
      if (errno == EINTR) continue;
      sys_fail("accept");
    }
    try {
      keep_serving = serve_connection(conn.fd, coordinator);
    } catch (const std::exception& ex) {
      // Corrupt byte stream: best-effort error reply, drop the connection.
      // Decode-before-dispatch means the coordinator state is untouched.
      try {
        common::JsonObject o;
        o.field("ok", false).field("error", ex.what());
        send_all(conn.fd, encode_frame(o.str()));
      } catch (...) {
      }
    }
  }
  ::unlink(socket_path.c_str());
}

std::string request(const std::string& socket_path,
                    const std::string& request_json) {
  const sockaddr_un addr = make_addr(socket_path);
  Fd conn(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (conn.fd < 0) sys_fail("socket");
  if (::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    sys_fail("connect " + socket_path);
  }
  send_all(conn.fd, encode_frame(request_json));

  FrameBuffer buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("recv");
    }
    if (n == 0) {
      throw std::runtime_error("coord server: connection closed before reply");
    }
    buffer.feed(std::string_view(chunk, static_cast<std::size_t>(n)));
    if (auto frame = buffer.take_frame()) return std::string(*frame);
  }
}

}  // namespace fedsched::coord
