#pragma once
// Shared construction + checkpointed stepping for testbed FedAvg runs.
//
// build_train_job() is the single place the deterministic core of a train
// run is assembled — datasets, device profiles, the full-scale schedule
// (emitting its sched trace event), the proportional data partition, and the
// base FlConfig. `fedsched_cli train` and the coordinator both call it, so a
// coordinator-submitted run is byte-identical to the one-shot CLI run *by
// construction*, not by parallel maintenance of two copies of the same
// seed-sensitive recipe (the RNG stream order — baseline assignment, then
// partition — is part of the trace contract).
//
// run_train_step() executes exactly one round via the runner's
// checkpoint/halt machinery: every step saves a checkpoint (cadence 1), so
// the interleaving coordinator can park the run after any round and a
// coordinator restart resumes it bit-identically. The matching one-shot CLI
// invocation is `fedsched_cli train ... --checkpoint-out X
// --checkpoint-every 1` (the `checkpoint` trace event is part of the stream,
// so byte-identical traces require the same cadence).

#include <cstddef>
#include <string>
#include <vector>

#include "coord/spec.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "device/model_desc.hpp"
#include "device/spec.hpp"
#include "fl/runner.hpp"
#include "nn/models.hpp"
#include "obs/trace.hpp"
#include "sched/types.hpp"

namespace fedsched::coord {

namespace chaos {
class ChaosInjector;
}  // namespace chaos

/// Everything a FedAvgRunner needs, fully deterministic in the spec.
struct TrainJob {
  data::Dataset train;
  data::Dataset test;
  std::vector<device::PhoneModel> phones;
  device::ModelDesc desc;
  nn::ModelSpec model_spec;
  std::vector<sched::UserProfile> users;
  sched::Assignment assignment;
  data::Partition partition;
  /// rounds / seed / parallelism / evaluate_each_round set from the spec;
  /// trace, checkpoint, faults etc. left for the caller to attach.
  fl::FlConfig config;
};

/// Assemble the job. A non-null enabled `trace` receives the schedule's
/// sched_* trace event exactly as `fedsched_cli train` emits it.
[[nodiscard]] TrainJob build_train_job(const TrainRunSpec& spec,
                                       obs::TraceWriter* trace);

struct TrainStepOutcome {
  /// The runner's result after this step: halted partial result for
  /// intermediate rounds, the complete RunResult on the final step.
  fl::RunResult result;
  std::size_t rounds_completed = 0;
  bool done = false;
};

/// Run one round of `spec` as a checkpointed step. `completed_rounds` is the
/// number of rounds already on disk at `ckpt_path` (0 = start fresh). The
/// trace file at `trace_path` is rewritten each step via the checkpoint's
/// captured prefix, so after the final step it is byte-identical to an
/// uninterrupted run's. The checkpoint is written to a temp file and renamed
/// into place, so a kill mid-step can never leave a corrupt resume point.
/// A non-null enabled `chaos` injector threads the checkpoint write through
/// its before-tmp / after-tmp / after-rename crash points.
[[nodiscard]] TrainStepOutcome run_train_step(const TrainRunSpec& spec,
                                              const std::string& ckpt_path,
                                              const std::string& trace_path,
                                              std::size_t completed_rounds,
                                              chaos::ChaosInjector* chaos = nullptr);

/// The complete run in one call with the same cadence (checkpoint every
/// round) — the reference the stepped execution must match byte-for-byte.
[[nodiscard]] fl::RunResult run_train_oneshot(const TrainRunSpec& spec,
                                              const std::string& ckpt_path,
                                              const std::string& trace_path);

/// RunResult rendered as the coordinator's result.json document.
[[nodiscard]] std::string train_result_json(const TrainRunSpec& spec,
                                            const fl::RunResult& result);

}  // namespace fedsched::coord
