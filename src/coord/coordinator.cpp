#include "coord/coordinator.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "coord/fleet_job.hpp"
#include "coord/train_job.hpp"
#include "coord/wire.hpp"

namespace fedsched::coord {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kSubmitted: return "submitted";
    case RunStatus::kAdmitted: return "admitted";
    case RunStatus::kRunning: return "running";
    case RunStatus::kCheckpointed: return "checkpointed";
    case RunStatus::kDone: return "done";
    case RunStatus::kFailed: return "failed";
  }
  return "unknown";
}

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      registry_(config_.root),
      chaos_(config_.chaos) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_concurrent_rounds == 0) config_.max_concurrent_rounds = 1;
  if (!config_.trace_path.empty()) {
    trace_ = obs::TraceWriter::to_file(config_.trace_path);
  }
  registry_.set_durable(config_.durable_writes);
  registry_.set_chaos(&chaos_);

  // Restart story: every persisted run resumes exactly where its checkpoint
  // left it. scan() sorts by id, so the requeue order is deterministic, and
  // quarantines damaged directories so one corrupt run cannot block the rest.
  // Chaos is deliberately not threaded through the scan's own renames: the
  // recovery path must always make forward progress.
  ScanOutcome scanned = registry_.scan();
  quarantined_ = std::move(scanned.quarantined);
  for (const QuarantineRecord& q : quarantined_) {
    metrics_.add("coord.runs_quarantined");
    common::JsonObject ev;
    ev.field("ev", "coord_quarantine")
        .field("id", q.id)
        .field("moved_to", q.moved_to)
        .field("reason", q.reason);
    emit(ev);
  }
  if (scanned.stale_tmp_removed > 0) {
    metrics_.add("coord.stale_tmp_removed", scanned.stale_tmp_removed);
  }
  for (RecoveredRun& rec : scanned.runs) {
    Entry e;
    e.spec = std::move(rec.spec);
    e.rounds_completed = rec.rounds_completed;
    switch (rec.state) {
      case RecoveredState::kDone: e.status = RunStatus::kDone; break;
      case RecoveredState::kFailed:
        e.status = RunStatus::kFailed;
        e.error = std::move(rec.error);
        break;
      case RecoveredState::kResumable: e.status = RunStatus::kCheckpointed; break;
      case RecoveredState::kFresh: e.status = RunStatus::kAdmitted; break;
    }
    const std::string id = e.spec.id;
    if (e.status == RunStatus::kCheckpointed || e.status == RunStatus::kAdmitted) {
      ready_.push_back(id);
    }
    runs_.emplace(id, std::move(e));
  }

  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  if (config_.watchdog_s > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  idle_cv_.notify_all();
  // Join the watchdog first: it is the only thing that appends replacement
  // workers, so afterwards the workers_ vector is stable.
  if (watchdog_.joinable()) watchdog_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

bool Coordinator::head_dispatchable() const {
  if (ready_.empty()) return false;
  if (running_ >= config_.max_concurrent_rounds) return false;
  const Entry& e = runs_.at(ready_.front());
  // Submission caps a single run at the full budget, so the head can always
  // run once the fleet drains — head-of-line order, no starvation.
  return running_resident_ + e.spec.resident_clients() <=
         config_.max_resident_clients;
}

void Coordinator::emit(const common::JsonObject& event) { trace_.write(event); }

void Coordinator::enter_crashed_state() {
  crashed_ = true;
  stop_ = true;
  metrics_.add("coord.chaos_crashes");
  work_cv_.notify_all();
  idle_cv_.notify_all();
  watchdog_cv_.notify_all();
}

void Coordinator::worker_loop(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || head_dispatchable(); });
    if (stop_) return;

    const std::string id = ready_.front();
    ready_.pop_front();
    Entry& entry = runs_.at(id);
    entry.status = RunStatus::kRunning;
    const RunSpec spec = entry.spec;  // stable copy for the unlocked step
    const std::size_t round = entry.rounds_completed;
    const std::size_t resident = spec.resident_clients();
    const std::uint64_t token = next_token_++;
    inflight_.emplace(
        token, InFlight{id, resident, std::chrono::steady_clock::now()});
    ++running_;
    running_resident_ += resident;
    metrics_.add("coord.steps");
    {
      common::JsonObject ev;
      ev.field("ev", "coord_round_dispatch")
          .field("id", id)
          .field("kind", run_kind_name(spec.kind))
          .field("round", round)
          .field("worker", worker_index);
      emit(ev);
    }
    lock.unlock();

    std::size_t completed = round;
    bool done = false;
    bool crashed = false;
    std::string error;
    std::string result_json;
    try {
      if (chaos_.should_fail_round(id, round)) {
        throw std::runtime_error("chaos: injected failure for run '" + id +
                                 "' at round " + std::to_string(round));
      }
      const double hang = chaos_.hang_before_round(id, round);
      if (hang > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(hang));
      }
      const std::string ckpt = registry_.ckpt_path(id);
      const std::string trace = registry_.trace_path(id);
      if (spec.kind == RunKind::kTrain) {
        TrainStepOutcome out =
            run_train_step(spec.train, ckpt, trace, round, &chaos_);
        completed = out.rounds_completed;
        done = out.done;
        if (done) result_json = train_result_json(spec.train, out.result);
      } else {
        FleetStepOutcome out =
            run_fleet_step(spec.fleet, ckpt, trace, round, &chaos_);
        completed = out.rounds_completed;
        done = out.done;
        if (done) {
          result_json = fleet_result_json(spec.fleet, load_fleet_summaries(ckpt));
        }
      }
    } catch (const chaos::ChaosCrash&) {
      crashed = true;
    } catch (const std::exception& ex) {
      error = ex.what();
    }

    lock.lock();
    if (crashed) {
      // Simulated SIGKILL: freeze everything exactly as it stands. No entry
      // update, no registry write — the on-disk state is whatever the crash
      // point left, and only a fresh Coordinator over this root moves on.
      enter_crashed_state();
      return;
    }
    const auto claim = inflight_.find(token);
    if (claim == inflight_.end()) {
      // The watchdog expired this step and already published a failure: this
      // thread was replaced, and its late outcome must be discarded. The
      // watchdog released the capacity when it erased the token.
      return;
    }
    inflight_.erase(claim);
    // `running_` is NOT decremented yet: the step still owns its capacity
    // until its outcome is published below. Releasing it here would open a
    // window where ready_ is empty and running_ is zero with the run neither
    // requeued nor terminal — wait_all_done() would report an idle
    // coordinator mid-run (the chaos soak caught exactly that).
    lock.unlock();

    // Terminal registry writes happen only after claiming the token, so an
    // abandoned step can never overwrite the watchdog's verdict on disk.
    try {
      if (error.empty()) {
        if (done) registry_.write_result(id, result_json);
        registry_.write_meta(id, completed);
      } else {
        registry_.write_error(id, error);
      }
    } catch (const chaos::ChaosCrash&) {
      crashed = true;
    } catch (const std::exception& ex) {
      if (error.empty()) error = ex.what();
      // else: the in-memory status still flips to failed below.
    }

    lock.lock();
    if (crashed) {
      enter_crashed_state();
      return;
    }
    --running_;
    running_resident_ -= resident;
    Entry& after = runs_.at(id);
    if (!error.empty()) {
      after.status = RunStatus::kFailed;
      after.error = error;
      metrics_.add("coord.step_failures");
    } else {
      after.rounds_completed = completed;
      if (done) {
        after.status = RunStatus::kDone;
      } else {
        after.status = RunStatus::kCheckpointed;
        ready_.push_back(id);
      }
    }
    work_cv_.notify_all();
    idle_cv_.notify_all();
  }
}

void Coordinator::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    watchdog_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(config_.watchdog_poll_ms),
        [this] { return stop_; });
    if (stop_) return;

    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<std::uint64_t, InFlight>> expired;
    for (const auto& [token, step] : inflight_) {
      const double age = std::chrono::duration<double>(now - step.started).count();
      if (age > config_.watchdog_s) expired.emplace_back(token, step);
    }
    for (const auto& [token, step] : expired) {
      inflight_.erase(token);
      --running_;
      running_resident_ -= step.resident;
      Entry& entry = runs_.at(step.id);
      entry.status = RunStatus::kFailed;
      entry.error = "watchdog: step exceeded " +
                    std::to_string(config_.watchdog_s) + " s wall clock";
      metrics_.add("coord.watchdog_kills");
      {
        common::JsonObject ev;
        ev.field("ev", "coord_watchdog_kill")
            .field("id", step.id)
            .field("round", entry.rounds_completed);
        emit(ev);
      }
      // The wedged worker still holds its (now ownerless) step; give the
      // pool a fresh thread so capacity is actually freed.
      workers_.emplace_back([this, i = workers_.size()] { worker_loop(i); });
      const std::string id = step.id;
      const std::string error = entry.error;
      lock.unlock();
      try {
        registry_.write_error(id, error);
      } catch (...) {
        // In-memory status already failed; disk stays best-effort here.
      }
      lock.lock();
    }
    if (!expired.empty()) {
      work_cv_.notify_all();
      idle_cv_.notify_all();
    }
  }
}

SubmitOutcome Coordinator::submit(const RunSpec& spec) {
  SubmitOutcome out;
  std::lock_guard<std::mutex> lock(mu_);
  const auto reject = [&](const std::string& why) {
    out.error = why;
    metrics_.add("coord.rejects");
    common::JsonObject ev;
    ev.field("ev", "coord_reject").field("id", spec.id).field("reason", why);
    emit(ev);
    return out;
  };
  if (crashed_) return reject("chaos: coordinator crashed");
  if (stop_) return reject("coordinator is shutting down");
  if (runs_.count(spec.id) != 0 || registry_.exists(spec.id)) {
    return reject("duplicate run id '" + spec.id + "'");
  }
  const std::size_t resident = spec.resident_clients();
  if (resident > config_.max_resident_clients) {
    return reject("run needs " + std::to_string(resident) +
                  " resident clients; coordinator cap is " +
                  std::to_string(config_.max_resident_clients));
  }
  if (ready_.size() >= config_.max_queued_runs) {
    return reject("queue full (" + std::to_string(ready_.size()) +
                  " runs waiting)");
  }

  try {
    registry_.persist_spec(spec);
  } catch (const chaos::ChaosCrash&) {
    enter_crashed_state();
    out.error = "chaos: coordinator crashed while persisting spec";
    return out;
  }
  Entry e;
  e.spec = spec;
  e.status = RunStatus::kAdmitted;
  runs_.emplace(spec.id, std::move(e));
  ready_.push_back(spec.id);
  metrics_.add("coord.submits");
  {
    common::JsonObject ev;
    ev.field("ev", "coord_admit")
        .field("id", spec.id)
        .field("kind", run_kind_name(spec.kind))
        .field("rounds", spec.total_rounds())
        .field("resident_clients", resident)
        .field("queued", ready_.size());
    emit(ev);
  }
  work_cv_.notify_one();
  out.accepted = true;
  return out;
}

RunInfo Coordinator::info_of(const Entry& e) const {
  RunInfo info;
  info.spec = e.spec;
  info.status = e.status;
  info.rounds_completed = e.rounds_completed;
  info.error = e.error;
  return info;
}

std::optional<RunInfo> Coordinator::status(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = runs_.find(id);
  if (it == runs_.end()) return std::nullopt;
  return info_of(it->second);
}

std::vector<RunInfo> Coordinator::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RunInfo> infos;
  infos.reserve(runs_.size());
  for (const auto& [id, e] : runs_) infos.push_back(info_of(e));
  return infos;
}

std::string Coordinator::trace_bytes(const std::string& id) const {
  return registry_.read_trace(id);
}

std::string Coordinator::result_document(const std::string& id) const {
  return registry_.read_result(id);
}

std::string Coordinator::checkpoint_bytes(const std::string& id) const {
  return registry_.read_checkpoint(id);
}

void Coordinator::wait_all_done() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return stop_ || crashed_ || (ready_.empty() && running_ == 0);
  });
}

bool Coordinator::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

bool Coordinator::chaos_crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::vector<QuarantineRecord> Coordinator::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_;
}

std::string Coordinator::metrics_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.to_json();
}

void Coordinator::record_event(const common::JsonObject& event,
                               const char* counter) {
  std::lock_guard<std::mutex> lock(mu_);
  emit(event);
  if (counter != nullptr) metrics_.add(counter);
}

namespace {

std::string error_reply(const std::string& what) {
  common::JsonObject o;
  o.field("ok", false).field("error", what);
  return o.str();
}

void status_fields(common::JsonObject& o, const RunInfo& info) {
  o.field("id", info.spec.id)
      .field("kind", run_kind_name(info.spec.kind))
      .field("status", run_status_name(info.status))
      .field("rounds_completed", info.rounds_completed)
      .field("total_rounds", info.spec.total_rounds());
  if (!info.error.empty()) o.field("error", info.error);
}

std::string require_id(const common::JsonValue& v) {
  const std::string id = v.get_string("id", "");
  if (id.empty()) throw std::runtime_error("request needs a non-empty 'id'");
  return id;
}

std::string strip_newline(std::string s) {
  while (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

std::string Coordinator::reply_status(const std::string& id) {
  const std::optional<RunInfo> info = status(id);
  if (!info) return error_reply("unknown run id '" + id + "'");
  common::JsonObject o;
  o.field("ok", true);
  status_fields(o, *info);
  return o.str();
}

std::string Coordinator::handle_request_json(const std::string& request) {
  try {
    const common::JsonValue v = common::json_parse(request);
    if (!v.is_object()) return error_reply("request must be a JSON object");
    const std::string verb = v.get_string("verb", "");

    if (verb == "ping") {
      common::JsonObject o;
      o.field("ok", true).field("service", "fedsched-coordinator");
      return o.str();
    }
    if (verb == "submit") {
      const common::JsonValue* spec_json = v.find("spec");
      if (spec_json == nullptr) return error_reply("submit needs a 'spec' object");
      const RunSpec spec = parse_run_spec(*spec_json);
      const SubmitOutcome out = submit(spec);
      if (!out.accepted) return error_reply(out.error);
      return reply_status(spec.id);
    }
    if (verb == "status") return reply_status(require_id(v));
    if (verb == "list") {
      std::string arr = "[";
      bool first = true;
      for (const RunInfo& info : list()) {
        common::JsonObject ro;
        status_fields(ro, info);
        if (!first) arr += ",";
        first = false;
        arr += ro.str();
      }
      arr += "]";
      common::JsonObject o;
      o.field("ok", true).field_raw("runs", arr);
      return o.str();
    }
    if (verb == "trace") {
      const std::string id = require_id(v);
      common::JsonObject o;
      o.field("ok", true).field("id", id).field("jsonl", trace_bytes(id));
      return o.str();
    }
    if (verb == "result") {
      const std::string id = require_id(v);
      const std::string doc = strip_newline(result_document(id));
      common::JsonObject o;
      // Both views: `result` for programmatic clients, `json` for exact-byte
      // file fetches (the CLI's --result-out).
      o.field("ok", true).field("id", id).field_raw("result", doc).field("json", doc);
      return o.str();
    }
    if (verb == "checkpoint") {
      const std::string id = require_id(v);
      common::JsonObject o;
      o.field("ok", true).field("id", id).field("hex", to_hex(checkpoint_bytes(id)));
      return o.str();
    }
    if (verb == "metrics") {
      const std::string doc = metrics_json();
      common::JsonObject o;
      // Both views, like `result`: parsed object + exact-byte string.
      o.field("ok", true).field_raw("metrics", doc).field("json", doc);
      return o.str();
    }
    if (verb == "shutdown") {
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      common::JsonObject o;
      o.field("ok", true).field("shutting_down", true);
      return o.str();
    }
    return error_reply("unknown verb '" + verb + "'");
  } catch (const std::exception& ex) {
    return error_reply(ex.what());
  }
}

std::string Coordinator::handle_frame(const std::string& frame) {
  // Decode strictly before dispatch: a malformed frame cannot reach any verb
  // handler, so it provably leaves coordinator state untouched.
  std::string request;
  try {
    request = std::string(decode_frame(frame));
  } catch (const std::exception& ex) {
    return encode_frame(error_reply(ex.what()));
  }
  return encode_frame(handle_request_json(request));
}

}  // namespace fedsched::coord
