#include "coord/spec.hpp"

#include <cmath>
#include <stdexcept>

#include "device/spec.hpp"
#include "fleet/fleet.hpp"

namespace fedsched::coord {

namespace {

using common::JsonValue;

void fail(const std::string& what) {
  throw std::runtime_error("run spec: " + what);
}

std::size_t get_size(const JsonValue& v, const std::string& key,
                     std::size_t fallback) {
  const double d = v.get_number(key, static_cast<double>(fallback));
  if (!(d >= 0.0) || d != std::floor(d) || d > 1e15) {
    fail("field '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::uint64_t get_u64(const JsonValue& v, const std::string& key,
                      std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      get_size(v, key, static_cast<std::size_t>(fallback)));
}

void check_model(const std::string& model) {
  if (model != "LeNet" && model != "VGG6") {
    fail("model must be LeNet or VGG6, got '" + model + "'");
  }
}

TrainRunSpec parse_train(const JsonValue& v) {
  TrainRunSpec t;
  t.dataset = v.get_string("dataset", t.dataset);
  if (t.dataset != "mnist" && t.dataset != "cifar") {
    fail("dataset must be mnist or cifar, got '" + t.dataset + "'");
  }
  t.testbed = static_cast<int>(get_size(v, "testbed", 1));
  if (t.testbed < 1 || t.testbed > 3) fail("testbed must be 1, 2 or 3");
  t.model = v.get_string("model", t.model);
  check_model(t.model);
  t.samples = get_size(v, "samples", t.samples);
  if (t.samples == 0) fail("samples must be > 0");
  t.policy = v.get_string("policy", t.policy);
  if (t.policy != "fed-lbap" && t.policy != "equal" && t.policy != "prop" &&
      t.policy != "random") {
    fail("train policy must be fed-lbap|equal|prop|random, got '" + t.policy + "'");
  }
  t.rounds = get_size(v, "rounds", t.rounds);
  if (t.rounds == 0) fail("rounds must be > 0");
  t.seed = get_u64(v, "seed", t.seed);
  t.parallelism = get_size(v, "parallelism", t.parallelism);
  t.evaluate_each_round = v.get_bool("evaluate_each_round", false);
  return t;
}

FleetRunSpec parse_fleet(const JsonValue& v) {
  FleetRunSpec f;
  f.fleet_size = get_size(v, "fleet_size", f.fleet_size);
  if (f.fleet_size == 0) fail("fleet_size must be > 0");
  f.mix = v.get_string("mix", f.mix);
  if (!f.mix.empty()) {
    (void)fleet::parse_fleet_mix(f.mix);  // validate eagerly
  }
  f.model = v.get_string("model", f.model);
  check_model(f.model);
  f.shard = get_size(v, "shard", f.shard);
  if (f.shard == 0) fail("shard must be > 0");
  f.buckets = get_size(v, "buckets", f.buckets);
  if (f.buckets == 0) fail("buckets must be > 0");
  f.rounds = get_size(v, "rounds", f.rounds);
  if (f.rounds == 0) fail("rounds must be > 0");
  f.total_shards = get_size(v, "total_shards", f.total_shards);
  f.policy = v.get_string("policy", f.policy);
  if (f.policy != "fed-lbap" && f.policy != "fed-minavg") {
    fail("fleet policy must be fed-lbap or fed-minavg, got '" + f.policy + "'");
  }
  f.deadline_s = v.get_number("deadline_s", f.deadline_s);
  if (std::isnan(f.deadline_s) || f.deadline_s <= 0.0) {
    // Absent = +inf (JSON has no Inf literal, so the field is simply omitted
    // for deadline-free runs).
    fail("deadline_s must be > 0");
  }
  f.dropout = v.get_number("dropout", f.dropout);
  if (!(f.dropout >= 0.0 && f.dropout <= 1.0)) fail("dropout must be in [0, 1]");
  f.battery_floor = v.get_number("battery_floor", f.battery_floor);
  if (!(f.battery_floor >= 0.0 && f.battery_floor < 1.0)) {
    fail("battery_floor must be in [0, 1)");
  }
  f.seed = get_u64(v, "seed", f.seed);
  f.parallelism = get_size(v, "parallelism", f.parallelism);
  return f;
}

}  // namespace

std::size_t RunSpec::resident_clients() const {
  if (kind == RunKind::kFleet) return fleet.fleet_size;
  return device::testbed(train.testbed).size();
}

const char* run_kind_name(RunKind kind) {
  return kind == RunKind::kTrain ? "train" : "fleet";
}

RunSpec parse_run_spec(const JsonValue& v) {
  if (!v.is_object()) fail("spec must be a JSON object");
  RunSpec spec;
  spec.id = v.get_string("id", "");
  if (spec.id.empty() || spec.id.size() > 128) {
    fail("id must be a non-empty string of at most 128 characters");
  }
  for (char c : spec.id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) fail("id may contain only [A-Za-z0-9._-]");
  }
  if (spec.id[0] == '.') fail("id must not start with '.'");
  const std::string kind = v.get_string("kind", "train");
  if (kind == "train") {
    spec.kind = RunKind::kTrain;
    spec.train = parse_train(v);
  } else if (kind == "fleet") {
    spec.kind = RunKind::kFleet;
    spec.fleet = parse_fleet(v);
  } else {
    fail("kind must be train or fleet, got '" + kind + "'");
  }
  return spec;
}

std::string run_spec_json(const RunSpec& spec) {
  common::JsonObject o;
  o.field("id", spec.id).field("kind", run_kind_name(spec.kind));
  if (spec.kind == RunKind::kTrain) {
    const TrainRunSpec& t = spec.train;
    o.field("dataset", t.dataset)
        .field("testbed", t.testbed)
        .field("model", t.model)
        .field("samples", t.samples)
        .field("policy", t.policy)
        .field("rounds", t.rounds)
        .field("seed", t.seed)
        .field("parallelism", t.parallelism)
        .field("evaluate_each_round", t.evaluate_each_round);
  } else {
    const FleetRunSpec& f = spec.fleet;
    o.field("fleet_size", f.fleet_size)
        .field("mix", f.mix)
        .field("model", f.model)
        .field("shard", f.shard)
        .field("buckets", f.buckets)
        .field("rounds", f.rounds)
        .field("total_shards", f.total_shards)
        .field("policy", f.policy);
    if (std::isfinite(f.deadline_s)) o.field("deadline_s", f.deadline_s);
    o.field("dropout", f.dropout)
        .field("battery_floor", f.battery_floor)
        .field("seed", f.seed)
        .field("parallelism", f.parallelism);
  }
  return o.str();
}

}  // namespace fedsched::coord
