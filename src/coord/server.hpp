#pragma once
// Local-socket transport for the coordinator protocol.
//
// serve() binds an AF_UNIX stream socket and services many connections at
// once through a poll() loop: frames are accumulated per-connection through
// a FrameBuffer, each complete frame is answered via
// Coordinator::handle_frame, and a malformed byte stream gets a best-effort
// error reply before the connection is dropped (the coordinator itself is
// untouched — decode happens before dispatch). Two deadlines keep a hostile
// or wedged peer from holding resources: a *read deadline* measured from the
// first byte of a partial frame (a slow-loris trickling one byte at a time
// is dropped once the frame is older than the deadline, while other
// connections keep being served), and an *idle timeout* for connections with
// no traffic at all. The accept loop exits after a "shutdown" verb is
// handled (in-flight run steps finish and checkpoint through
// Coordinator::stop()), or as soon as the coordinator reports
// chaos_crashed() — simulated process death takes the server down with it.
// The bound socket path is removed via RAII on *every* exit path, including
// exceptions, so a crashed server never leaves a stale socket behind.
//
// request() is the matching client side: one connection, one frame out, one
// reply frame back, with a bounded connect and a receive deadline.
// request_with_retry() adds a deterministic exponential-backoff schedule,
// and submit_with_retry() makes re-submission idempotent: a duplicate-id
// rejection on a retry attempt means the lost ack's submit actually landed,
// so it is confirmed via `status` and treated as success.
// `fedsched_cli submit/coord` is a thin wrapper over these.

#include <cstddef>
#include <string>

#include "coord/coordinator.hpp"

namespace fedsched::coord {

/// Unlinks `path` on destruction — exception-safe cleanup of the bound
/// AF_UNIX socket path.
class SocketPathGuard {
 public:
  explicit SocketPathGuard(std::string path) : path_(std::move(path)) {}
  ~SocketPathGuard();
  SocketPathGuard(const SocketPathGuard&) = delete;
  SocketPathGuard& operator=(const SocketPathGuard&) = delete;

  /// Keep the path (ownership transferred elsewhere).
  void release() noexcept { path_.clear(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

struct ServeOptions {
  /// Max real seconds a partial frame may sit unfinished before the
  /// connection is dropped (slow-loris defense).
  double read_deadline_s = 30.0;
  /// Max real seconds a connection may stay silent between frames.
  double idle_timeout_s = 600.0;
  /// poll() tick; bounds how late deadline enforcement can fire.
  int poll_interval_ms = 50;
  /// Reply-frame fault injection (truncate/split/delay/close). The server
  /// does not own it; nullptr or a disabled injector is byte-inert.
  chaos::ChaosInjector* chaos = nullptr;
};

struct ServeStats {
  std::size_t connections = 0;
  std::size_t frames = 0;
  std::size_t deadline_drops = 0;
  std::size_t idle_drops = 0;
  std::size_t protocol_drops = 0;
  std::size_t chaos_truncated = 0;
  std::size_t chaos_split = 0;
  std::size_t chaos_delayed = 0;
  std::size_t chaos_closed = 0;
};

/// Serve `coordinator` on an AF_UNIX socket at `socket_path` until a
/// shutdown verb arrives (or the coordinator chaos-crashes). Replaces a
/// stale socket file at that path; removes it on every exit path. Throws
/// std::runtime_error on socket setup failures.
void serve(Coordinator& coordinator, const std::string& socket_path);
void serve(Coordinator& coordinator, const std::string& socket_path,
           const ServeOptions& options, ServeStats* stats = nullptr);

struct RetryPolicy {
  /// Total tries (min 1). request() uses a single attempt by default.
  std::size_t attempts = 3;
  double connect_timeout_s = 5.0;
  double recv_timeout_s = 10.0;
  /// Deterministic backoff before retry i (1-based):
  /// min(backoff_base_s * 2^(i-1), backoff_max_s).
  double backoff_base_s = 0.05;
  double backoff_max_s = 2.0;

  [[nodiscard]] double backoff_before_attempt(std::size_t attempt) const;
};

/// Send one request document to the server at `socket_path` and return the
/// reply document. Throws std::runtime_error on connection or protocol
/// failures. Connect and receive are bounded by RetryPolicy defaults.
[[nodiscard]] std::string request(const std::string& socket_path,
                                  const std::string& request_json);

/// request() with `policy.attempts` tries and deterministic exponential
/// backoff between them. Throws the last failure once attempts run out.
[[nodiscard]] std::string request_with_retry(const std::string& socket_path,
                                             const std::string& request_json,
                                             const RetryPolicy& policy);

/// Idempotent submit: retries like request_with_retry, but a duplicate-id
/// rejection on any attempt after the first means an earlier try landed and
/// only its ack was lost — the run's `status` reply is returned as the
/// success document. A duplicate on the *first* attempt is a genuine
/// rejection and is returned as-is. Other rejections are never retried.
[[nodiscard]] std::string submit_with_retry(const std::string& socket_path,
                                            const RunSpec& spec,
                                            const RetryPolicy& policy);

}  // namespace fedsched::coord
