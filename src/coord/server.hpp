#pragma once
// Local-socket transport for the coordinator protocol.
//
// serve() binds an AF_UNIX stream socket and services one connection at a
// time: frames are accumulated through a FrameBuffer, each complete frame is
// answered via Coordinator::handle_frame, and a malformed byte stream gets a
// best-effort error reply before the connection is dropped (the coordinator
// itself is untouched — decode happens before dispatch). The accept loop
// exits after a "shutdown" verb is handled; in-flight run steps finish and
// checkpoint through Coordinator::stop().
//
// request() is the matching client side: one connection, one frame out, one
// reply frame back. `fedsched_cli submit/coord` is a thin wrapper over it.

#include <string>

#include "coord/coordinator.hpp"

namespace fedsched::coord {

/// Serve `coordinator` on an AF_UNIX socket at `socket_path` until a
/// shutdown verb arrives. Replaces a stale socket file at that path; removes
/// it on exit. Throws std::runtime_error on socket setup failures.
void serve(Coordinator& coordinator, const std::string& socket_path);

/// Send one request document to the server at `socket_path` and return the
/// reply document. Throws std::runtime_error on connection or protocol
/// failures.
[[nodiscard]] std::string request(const std::string& socket_path,
                                  const std::string& request_json);

}  // namespace fedsched::coord
