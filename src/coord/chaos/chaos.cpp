#include "coord/chaos/chaos.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace fedsched::coord::chaos {

namespace {

// Hazard families hashed into independent draw streams.
constexpr std::uint64_t kStreamCrash = 0xC5A5'0000'0000'0001ULL;
constexpr std::uint64_t kStreamFrameAction = 0xC5A5'0000'0000'0002ULL;
constexpr std::uint64_t kStreamFrameBoundary = 0xC5A5'0000'0000'0003ULL;

// Uniform [0, 1) as a stateless function of (seed, stream, op): three
// splitmix64 rounds over the mixed words, same recipe as the scenario
// layer's hashed draws.
double unit_draw(std::uint64_t seed, std::uint64_t stream, std::uint64_t op) {
  std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  (void)common::splitmix64(state);
  state ^= 0xBF58476D1CE4E5B9ULL * (op + 1);
  (void)common::splitmix64(state);
  const std::uint64_t z = common::splitmix64(state);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

void check_unit(double value, const char* name) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument(std::string("chaos: ") + name +
                                " must be in [0, 1]");
  }
}

bool id_matches(const std::string& wanted, const std::string& id) noexcept {
  return wanted.empty() || wanted == id;
}

}  // namespace

const char* crash_phase_name(CrashPhase phase) noexcept {
  switch (phase) {
    case CrashPhase::kBeforeTmp: return "before-tmp";
    case CrashPhase::kAfterTmp: return "after-tmp";
    case CrashPhase::kAfterRename: return "after-rename";
  }
  return "unknown";
}

CrashPhase parse_crash_phase(const std::string& name) {
  if (name == "before-tmp") return CrashPhase::kBeforeTmp;
  if (name == "after-tmp") return CrashPhase::kAfterTmp;
  if (name == "after-rename") return CrashPhase::kAfterRename;
  throw std::invalid_argument("chaos: unknown crash phase '" + name +
                              "' (want before-tmp|after-tmp|after-rename)");
}

void ChaosConfig::validate() const {
  check_unit(crash_prob, "crash_prob");
  check_unit(frame_truncate_prob, "frame_truncate_prob");
  check_unit(frame_close_prob, "frame_close_prob");
  check_unit(frame_delay_prob, "frame_delay_prob");
  check_unit(frame_split_prob, "frame_split_prob");
  const double frame_total =
      frame_truncate_prob + frame_close_prob + frame_delay_prob + frame_split_prob;
  if (frame_total > 1.0 + 1e-12) {
    throw std::invalid_argument("chaos: frame action probabilities sum to > 1");
  }
  if (frame_delay_s < 0.0) {
    throw std::invalid_argument("chaos: frame_delay_s must be >= 0");
  }
  if (hang_s < 0.0) {
    throw std::invalid_argument("chaos: hang_s must be >= 0");
  }
}

ChaosInjector::ChaosInjector(ChaosConfig config) : config_(std::move(config)) {
  config_.validate();
}

std::uint64_t ChaosInjector::begin_write() noexcept {
  if (!config_.enabled) return 0;
  return write_op_.fetch_add(1, std::memory_order_relaxed);
}

void ChaosInjector::crash_point(std::uint64_t op, CrashPhase phase,
                                const std::string& path) const {
  if (!config_.enabled) return;
  if (config_.crash_at_write >= 0 &&
      op == static_cast<std::uint64_t>(config_.crash_at_write) &&
      phase == config_.crash_phase) {
    throw ChaosCrash{phase, op, path};
  }
  if (config_.crash_prob > 0.0) {
    const std::uint64_t draw_op = op * 4 + static_cast<std::uint64_t>(phase);
    if (unit_draw(config_.seed, kStreamCrash, draw_op) < config_.crash_prob) {
      throw ChaosCrash{phase, op, path};
    }
  }
}

FramePlan ChaosInjector::plan_frame(std::size_t frame_size) noexcept {
  FramePlan plan;
  if (!config_.enabled) return plan;
  const std::uint64_t op = frame_op_.fetch_add(1, std::memory_order_relaxed);
  if (config_.close_reply_at >= 0 &&
      op == static_cast<std::uint64_t>(config_.close_reply_at)) {
    plan.action = FrameAction::kClose;
    return plan;
  }
  const double u = unit_draw(config_.seed, kStreamFrameAction, op);
  double edge = config_.frame_truncate_prob;
  if (u < edge && frame_size >= 2) {
    plan.action = FrameAction::kTruncate;
  } else if (u < (edge += config_.frame_close_prob)) {
    plan.action = FrameAction::kClose;
    return plan;
  } else if (u < (edge += config_.frame_delay_prob)) {
    plan.action = FrameAction::kDelay;
    plan.delay_s = config_.frame_delay_s;
    return plan;
  } else if (u < (edge += config_.frame_split_prob) && frame_size >= 2) {
    plan.action = FrameAction::kSplit;
    plan.delay_s = config_.frame_delay_s;
  } else {
    return plan;
  }
  // Truncate/split boundary: a strict, non-empty prefix of the frame.
  const double b = unit_draw(config_.seed, kStreamFrameBoundary, op);
  plan.boundary =
      1 + static_cast<std::size_t>(b * static_cast<double>(frame_size - 1));
  if (plan.boundary >= frame_size) plan.boundary = frame_size - 1;
  return plan;
}

bool ChaosInjector::should_fail_round(const std::string& id,
                                      std::size_t round) const noexcept {
  return config_.enabled && config_.fail_round >= 0 &&
         round == static_cast<std::size_t>(config_.fail_round) &&
         id_matches(config_.fail_run_id, id);
}

double ChaosInjector::hang_before_round(const std::string& id,
                                        std::size_t round) const noexcept {
  if (config_.enabled && config_.hang_round >= 0 &&
      round == static_cast<std::size_t>(config_.hang_round) &&
      id_matches(config_.hang_run_id, id)) {
    return config_.hang_s;
  }
  return 0.0;
}

}  // namespace fedsched::coord::chaos
