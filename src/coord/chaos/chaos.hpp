#pragma once
// Deterministic service-plane fault injection for the coordinator.
//
// The FL runners already treat client hazards as pure functions of
// (seed, round, client) — fl/faults.hpp. ChaosInjector extends the same
// discipline to the *coordinator's* own hazards: process death at a durable
// write point, a mangled or withheld wire reply, a job that fails or hangs
// at a given round. Every decision is a pure function of (seed, op-counter):
// the injector keeps one atomic counter per hazard family (registry write
// ops, reply frames), each operation claims the next index, and the verdict
// for that index is a stateless splitmix64 hash of (seed, family, index).
// With a single worker the op sequence — and therefore the whole fault
// schedule — is deterministic and replayable from the seed alone.
//
// Contract (mirrors fl/faults):
//   1. With ChaosConfig::enabled == false every hook is a no-op that burns
//      no counter and draws nothing — a disabled injector is byte-inert:
//      coordinator results, traces and checkpoints are bit-identical to a
//      build without the chaos subsystem.
//   2. Crash points model SIGKILL, not failure: an armed crash throws
//      ChaosCrash, which deliberately does NOT derive from std::exception so
//      ordinary error handling (write error.txt, mark the run failed) cannot
//      swallow a simulated process death. The coordinator catches it at the
//      top of each worker, freezes all registry activity, and reports
//      chaos_crashed() — the restart story is then exactly the real one:
//      construct a new Coordinator over the same root.
//
// Crash-point catalog (docs/API.md "Chaos injection"): every atomic write —
// spec.json / meta.json / result.json / error.txt via write_file_atomic, and
// each step's checkpoint in run_train_step / run_fleet_step — claims one
// write op and exposes three phases: kBeforeTmp (nothing durable yet),
// kAfterTmp (temp file written, rename pending — the torn state a stale-tmp
// sweep must clean), kAfterRename (new bytes durable, everything after the
// rename lost).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fedsched::coord::chaos {

/// Where inside one atomic (tmp + rename) write a crash lands.
enum class CrashPhase : std::uint8_t { kBeforeTmp = 0, kAfterTmp, kAfterRename };

[[nodiscard]] const char* crash_phase_name(CrashPhase phase) noexcept;
/// "before-tmp" | "after-tmp" | "after-rename"; throws std::invalid_argument
/// on anything else.
[[nodiscard]] CrashPhase parse_crash_phase(const std::string& name);

struct ChaosConfig {
  /// Master switch. Off (default) = every hook is a byte-inert no-op.
  bool enabled = false;
  std::uint64_t seed = 0;

  /// Deterministic crash scheduling: >= 0 arms exactly one crash at that
  /// registry-write op index, at `crash_phase`. The soak harness enumerates
  /// (op, phase) pairs to kill the coordinator at every write point.
  std::int64_t crash_at_write = -1;
  CrashPhase crash_phase = CrashPhase::kBeforeTmp;
  /// Seeded mode: independent P[crash] per (seed, op, phase) hashed draw.
  double crash_prob = 0.0;

  /// Wire-frame chaos applied to server replies, one hashed draw per frame:
  /// truncate = send a strict prefix then close (the lost-ack case), close =
  /// close without replying, delay = pause frame_delay_s before sending,
  /// split = send in two bursts frame_delay_s apart (the reassembly case).
  /// Probabilities must sum to <= 1.
  double frame_truncate_prob = 0.0;
  double frame_close_prob = 0.0;
  double frame_delay_prob = 0.0;
  double frame_split_prob = 0.0;
  double frame_delay_s = 0.05;
  /// Targeted variant: close the connection instead of sending reply frame
  /// op N (deterministic lost-ack for the idempotent-resubmit tests). -1 =
  /// off.
  std::int64_t close_reply_at = -1;

  /// Job chaos: fail (throw from the step) or hang (sleep hang_s of real
  /// wall clock, for the watchdog) the matching run at round index N.
  /// Empty id = any run.
  std::int64_t fail_round = -1;
  std::string fail_run_id;
  std::int64_t hang_round = -1;
  std::string hang_run_id;
  double hang_s = 0.0;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

/// Simulated process death at a durable write point. Intentionally NOT a
/// std::exception: a catch(const std::exception&) failure path must not be
/// able to "handle" a SIGKILL.
struct ChaosCrash {
  CrashPhase phase = CrashPhase::kBeforeTmp;
  std::uint64_t op = 0;
  std::string path;  // the artifact being written when the process "died"
};

enum class FrameAction : std::uint8_t { kNone, kTruncate, kSplit, kDelay, kClose };

struct FramePlan {
  FrameAction action = FrameAction::kNone;
  /// Byte boundary for kTruncate / kSplit: always in [1, frame_size - 1].
  std::size_t boundary = 0;
  double delay_s = 0.0;  // for kDelay / kSplit
};

class ChaosInjector {
 public:
  /// Disabled injector: every hook is a no-op.
  ChaosInjector() = default;
  /// Validates the config.
  explicit ChaosInjector(ChaosConfig config);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }
  [[nodiscard]] const ChaosConfig& config() const noexcept { return config_; }

  /// Claim the next registry-write op index. Disabled injectors return 0
  /// without advancing anything.
  [[nodiscard]] std::uint64_t begin_write() noexcept;

  /// Crash point inside write op `op`: throws ChaosCrash when the armed
  /// (crash_at_write, crash_phase) matches or the seeded per-(op, phase)
  /// draw fires. No-op when disabled.
  void crash_point(std::uint64_t op, CrashPhase phase, const std::string& path) const;

  /// Plan the fate of the next reply frame: claims a frame op and hashes the
  /// verdict from (seed, op). `frame_size` bounds the truncate/split
  /// boundary. Disabled injectors always return kNone.
  [[nodiscard]] FramePlan plan_frame(std::size_t frame_size) noexcept;

  /// Job hooks, pure functions of the config (no counters).
  [[nodiscard]] bool should_fail_round(const std::string& id,
                                       std::size_t round) const noexcept;
  /// Real seconds the step must sleep before round `round`, 0 = none.
  [[nodiscard]] double hang_before_round(const std::string& id,
                                         std::size_t round) const noexcept;

  /// Registry write ops claimed so far (diagnostics).
  [[nodiscard]] std::uint64_t write_ops() const noexcept { return write_op_.load(); }
  [[nodiscard]] std::uint64_t frame_ops() const noexcept { return frame_op_.load(); }

 private:
  ChaosConfig config_;
  std::atomic<std::uint64_t> write_op_{0};
  std::atomic<std::uint64_t> frame_op_{0};
};

}  // namespace fedsched::coord::chaos
