#pragma once
// On-disk run registry: one directory per run under the coordinator root.
//
//   <root>/<id>/spec.json    the validated spec, written once at admission
//   <root>/<id>/meta.json    {"rounds_completed": n}, rewritten after each step
//   <root>/<id>/ckpt.bin     the run's resume point (FSC1 train / FSF1 fleet)
//   <root>/<id>/trace.jsonl  the run's trace, rewritten per step from the
//                            checkpointed prefix
//   <root>/<id>/result.json  terminal success document (presence = done)
//   <root>/<id>/error.txt    terminal failure message (presence = failed)
//
// Every write goes through a temp file + rename, so a coordinator killed
// mid-transition leaves either the old document or the new one, never a torn
// file. scan() reconstructs each run's lifecycle position from which files
// exist — that is the whole restart story: result.json wins, then error.txt,
// then a checkpoint to resume, else the run restarts from round zero.
//
// A directory scan() cannot make sense of — torn spec/meta, an id that does
// not match its directory, a checkpoint whose sealed checksum fails — is
// *quarantined*: renamed to `<id>.quarantined` (collisions get `.2`, `.3`,
// ...) with the reason recorded in `quarantine.txt` inside, and the scan
// keeps going. One corrupt run must never block recovery of the healthy
// ones. Stale `*.tmp` files (a write that died between tmp and rename) are
// swept at scan time.

#include <cstddef>
#include <string>
#include <vector>

#include "coord/spec.hpp"

namespace fedsched::coord {

namespace chaos {
class ChaosInjector;
}  // namespace chaos

/// Where scan() found a run in its lifecycle.
enum class RecoveredState { kDone, kFailed, kResumable, kFresh };

struct RecoveredRun {
  RunSpec spec;
  RecoveredState state = RecoveredState::kFresh;
  std::size_t rounds_completed = 0;  // meaningful for kResumable
  std::string error;                 // meaningful for kFailed
};

/// One corrupt run directory set aside by scan().
struct QuarantineRecord {
  std::string id;        // the directory name the run claimed
  std::string moved_to;  // quarantine directory name under root
  std::string reason;
};

struct ScanOutcome {
  std::vector<RecoveredRun> runs;              // sorted by id
  std::vector<QuarantineRecord> quarantined;   // sorted by id
  std::size_t stale_tmp_removed = 0;
};

struct AtomicWriteOptions {
  bool durable = false;
  chaos::ChaosInjector* chaos = nullptr;  // may be null or disabled
};

class RunRegistry {
 public:
  /// Creates `root` (and parents) if missing.
  explicit RunRegistry(std::string root);

  [[nodiscard]] const std::string& root() const noexcept { return root_; }
  [[nodiscard]] std::string run_dir(const std::string& id) const;
  [[nodiscard]] std::string spec_path(const std::string& id) const;
  [[nodiscard]] std::string meta_path(const std::string& id) const;
  [[nodiscard]] std::string ckpt_path(const std::string& id) const;
  [[nodiscard]] std::string trace_path(const std::string& id) const;
  [[nodiscard]] std::string result_path(const std::string& id) const;
  [[nodiscard]] std::string error_path(const std::string& id) const;

  [[nodiscard]] bool exists(const std::string& id) const;

  /// fsync the temp file and its directory around every rename (power-loss
  /// durability). Off by default so tests stay fast.
  void set_durable(bool durable) noexcept { durable_ = durable; }
  [[nodiscard]] bool durable() const noexcept { return durable_; }
  /// Optional fault injector threaded through every atomic write. The
  /// registry does not own it; nullptr (default) and a disabled injector are
  /// byte-equivalent.
  void set_chaos(chaos::ChaosInjector* chaos) noexcept { chaos_ = chaos; }

  /// Create the run directory and persist spec.json (atomic).
  void persist_spec(const RunSpec& spec) const;
  /// Rewrite meta.json with the step's progress (atomic).
  void write_meta(const std::string& id, std::size_t rounds_completed) const;
  /// Mark the run done / failed (atomic; presence is the state).
  void write_result(const std::string& id, const std::string& json) const;
  void write_error(const std::string& id, const std::string& message) const;

  /// Whole-file reads; throw std::runtime_error when the file is missing.
  [[nodiscard]] std::string read_result(const std::string& id) const;
  [[nodiscard]] std::string read_trace(const std::string& id) const;
  [[nodiscard]] std::string read_checkpoint(const std::string& id) const;

  /// Rebuild every persisted run's lifecycle position, sorted by id so a
  /// restarted coordinator requeues in-flight runs in a deterministic order.
  /// Corrupt directories are quarantined instead of aborting the scan;
  /// previously-quarantined directories are skipped. Never throws for
  /// per-run damage — only for an unreadable root.
  [[nodiscard]] ScanOutcome scan();

  /// Move a run directory to `<id>.quarantined` and record `reason` in its
  /// quarantine.txt. Exposed for scan(); safe to call directly.
  QuarantineRecord quarantine_run(const std::string& id,
                                  const std::string& reason);

 private:
  [[nodiscard]] AtomicWriteOptions write_options() const noexcept {
    return {durable_, chaos_};
  }

  std::string root_;
  bool durable_ = false;
  chaos::ChaosInjector* chaos_ = nullptr;
};

/// Shared atomic-write helper (temp file + rename within the directory).
/// With options.durable the temp file and its directory are fsync'd so the
/// rename survives power loss; options.chaos threads the write through the
/// injector's before-tmp / after-tmp / after-rename crash points.
void write_file_atomic(const std::string& path, const std::string& bytes,
                       const AtomicWriteOptions& options = {});
/// Whole-file read; throws std::runtime_error when missing/unreadable.
[[nodiscard]] std::string read_file(const std::string& path,
                                    const std::string& context);
/// Validate a sealed artifact's generic framing (header length, declared
/// payload size, FNV-1a checksum) without knowing its magic. Throws
/// std::runtime_error with `context` on damage.
void validate_sealed_artifact(const std::string& bytes,
                              const std::string& context);

}  // namespace fedsched::coord
