#pragma once
// On-disk run registry: one directory per run under the coordinator root.
//
//   <root>/<id>/spec.json    the validated spec, written once at admission
//   <root>/<id>/meta.json    {"rounds_completed": n}, rewritten after each step
//   <root>/<id>/ckpt.bin     the run's resume point (FSC1 train / FSF1 fleet)
//   <root>/<id>/trace.jsonl  the run's trace, rewritten per step from the
//                            checkpointed prefix
//   <root>/<id>/result.json  terminal success document (presence = done)
//   <root>/<id>/error.txt    terminal failure message (presence = failed)
//
// Every write goes through a temp file + rename, so a coordinator killed
// mid-transition leaves either the old document or the new one, never a torn
// file. scan() reconstructs each run's lifecycle position from which files
// exist — that is the whole restart story: result.json wins, then error.txt,
// then a checkpoint to resume, else the run restarts from round zero.

#include <cstddef>
#include <string>
#include <vector>

#include "coord/spec.hpp"

namespace fedsched::coord {

/// Where scan() found a run in its lifecycle.
enum class RecoveredState { kDone, kFailed, kResumable, kFresh };

struct RecoveredRun {
  RunSpec spec;
  RecoveredState state = RecoveredState::kFresh;
  std::size_t rounds_completed = 0;  // meaningful for kResumable
  std::string error;                 // meaningful for kFailed
};

class RunRegistry {
 public:
  /// Creates `root` (and parents) if missing.
  explicit RunRegistry(std::string root);

  [[nodiscard]] const std::string& root() const noexcept { return root_; }
  [[nodiscard]] std::string run_dir(const std::string& id) const;
  [[nodiscard]] std::string spec_path(const std::string& id) const;
  [[nodiscard]] std::string meta_path(const std::string& id) const;
  [[nodiscard]] std::string ckpt_path(const std::string& id) const;
  [[nodiscard]] std::string trace_path(const std::string& id) const;
  [[nodiscard]] std::string result_path(const std::string& id) const;
  [[nodiscard]] std::string error_path(const std::string& id) const;

  [[nodiscard]] bool exists(const std::string& id) const;

  /// Create the run directory and persist spec.json (atomic).
  void persist_spec(const RunSpec& spec) const;
  /// Rewrite meta.json with the step's progress (atomic).
  void write_meta(const std::string& id, std::size_t rounds_completed) const;
  /// Mark the run done / failed (atomic; presence is the state).
  void write_result(const std::string& id, const std::string& json) const;
  void write_error(const std::string& id, const std::string& message) const;

  /// Whole-file reads; throw std::runtime_error when the file is missing.
  [[nodiscard]] std::string read_result(const std::string& id) const;
  [[nodiscard]] std::string read_trace(const std::string& id) const;
  [[nodiscard]] std::string read_checkpoint(const std::string& id) const;

  /// Rebuild every persisted run's lifecycle position, sorted by id so a
  /// restarted coordinator requeues in-flight runs in a deterministic order.
  [[nodiscard]] std::vector<RecoveredRun> scan() const;

 private:
  std::string root_;
};

/// Shared atomic-write helper (temp file + rename within the directory).
void write_file_atomic(const std::string& path, const std::string& bytes);
/// Whole-file read; throws std::runtime_error when missing/unreadable.
[[nodiscard]] std::string read_file(const std::string& path,
                                    const std::string& context);

}  // namespace fedsched::coord
