#pragma once
// Checkpointed round-at-a-time stepping for fleet-tier runs.
//
// A fleet run replans and simulates one round per step, exactly as
// `fedsched_cli fleet` does in its loop: linear_costs over the surviving
// fleet, a bucketed schedule (emitting its sched_* trace event), then
// FleetSimulator::run_round (emitting fleet_round). Between steps the
// complete mutable state — the FleetState SoA, the per-round summaries, and
// the captured trace prefix — is persisted in an FSF1 checkpoint built on
// the same sealed-payload codec as the FSC1 run checkpoint, so a coordinator
// restart resumes the run bit-identically and the final trace file is
// byte-identical to the one-shot CLI run's (fleet generation happens inside
// the first step with the same seed, so even the fleet_generate event
// matches).

#include <cstddef>
#include <string>
#include <vector>

#include "coord/spec.hpp"
#include "obs/trace.hpp"
#include "sched/linear_costs.hpp"
#include "sched/types.hpp"

namespace fedsched::coord {

namespace chaos {
class ChaosInjector;
}  // namespace chaos

/// What the coordinator reports per simulated fleet round.
struct FleetRoundSummary {
  std::size_t round = 0;
  std::size_t participants = 0;
  std::size_t completed = 0;
  std::size_t dropped_crash = 0;
  std::size_t dropped_deadline = 0;
  std::size_t dropped_stale = 0;
  std::size_t battery_deaths = 0;
  std::size_t survivor_shards = 0;
  double threshold_s = 0.0;  // the bucketed planner's bound for the round
  double makespan_s = 0.0;
  double energy_wh = 0.0;
};

/// Policy dispatch shared with `fedsched_cli fleet`: solve one round's plan
/// with the bucketed scheduler, returning the assignment and its bound.
struct FleetPlan {
  sched::Assignment assignment;
  double threshold_s = 0.0;
};
[[nodiscard]] FleetPlan plan_fleet_round(const std::string& policy,
                                         const sched::LinearCosts& costs,
                                         std::size_t total_shards,
                                         std::size_t buckets,
                                         obs::TraceWriter* trace);

struct FleetStepOutcome {
  std::size_t rounds_completed = 0;
  bool done = false;
};

/// Run one round of `spec`. `completed_rounds` must match the checkpoint at
/// `ckpt_path` (0 = generate the fleet and start fresh). The trace file at
/// `trace_path` is rewritten each step from the captured prefix; the
/// checkpoint is written to a temp file and renamed into place. A non-null
/// enabled `chaos` injector threads that write through its crash points.
[[nodiscard]] FleetStepOutcome run_fleet_step(const FleetRunSpec& spec,
                                              const std::string& ckpt_path,
                                              const std::string& trace_path,
                                              std::size_t completed_rounds,
                                              chaos::ChaosInjector* chaos = nullptr);

/// Per-round summaries stored in the checkpoint at `ckpt_path` (the fleet
/// run's result payload once the run is done).
[[nodiscard]] std::vector<FleetRoundSummary> load_fleet_summaries(
    const std::string& ckpt_path);

/// Summaries rendered as the coordinator's result.json document.
[[nodiscard]] std::string fleet_result_json(
    const FleetRunSpec& spec, const std::vector<FleetRoundSummary>& rounds);

}  // namespace fedsched::coord
