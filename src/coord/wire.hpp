#pragma once
// Length-prefixed JSON wire protocol for the coordinator (src/coord).
//
// Every message — request or reply — travels as one *frame*: a UTF-8 JSON
// document wrapped in the shared sealed-payload header of
// fl/checkpoint/codec.hpp:
//
//   [magic u32 "FSW1"][version u32][payload_size u64][fnv1a64 u64][JSON]
//
// Frames are hardened the same way checkpoint v2 was: the reader validates
// magic and version as soon as the fixed header arrives, rejects any
// payload_size above kMaxFramePayload *before allocating anything*, and
// verifies the exact length and FNV-1a checksum before the payload is parsed
// as JSON. Truncation, a flipped bit, a mangled length prefix, or trailing
// garbage between frames all fail with a clean std::runtime_error and leave
// the coordinator untouched (tests/coord/test_wire.cpp pins every class).
//
// FrameBuffer is the incremental reader for stream sockets: feed() raw bytes
// as they arrive, take_frame() yields complete JSON payloads in order.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fedsched::coord {

inline constexpr std::uint32_t kWireMagic = 0x46535731;  // "FSW1"
inline constexpr std::uint32_t kWireVersion = 1;
/// Upper bound on one frame's JSON payload. Generous enough for a fetched
/// trace or hex-encoded checkpoint of the largest supported fleet; small
/// enough that a corrupted length header can never drive a huge allocation.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/// `json` wrapped in a sealed wire frame.
[[nodiscard]] std::string encode_frame(std::string_view json);

/// Validate one complete frame and return its JSON payload. Throws
/// std::runtime_error on any malformation (short buffer, bad magic/version,
/// oversized or mismatched length, checksum failure, trailing bytes).
[[nodiscard]] std::string decode_frame(std::string_view frame);

/// Incremental frame reader over a byte stream. Bytes may arrive in any
/// fragmentation; frames are yielded in order. A malformed header or payload
/// throws and poisons the buffer (the connection should be dropped — there
/// is no way to resynchronize a corrupt length-prefixed stream).
class FrameBuffer {
 public:
  /// Append raw bytes from the stream.
  void feed(std::string_view bytes);

  /// The next complete frame's JSON payload, or nullopt if more bytes are
  /// needed. Throws std::runtime_error on a malformed frame.
  [[nodiscard]] std::optional<std::string> take_frame();

  /// Bytes buffered but not yet consumed by take_frame().
  [[nodiscard]] std::size_t pending_bytes() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
};

/// Lowercase hex codec for binary artifacts (checkpoint fetch). from_hex
/// throws std::runtime_error on odd length or a non-hex digit.
[[nodiscard]] std::string to_hex(std::string_view bytes);
[[nodiscard]] std::string from_hex(std::string_view hex);

}  // namespace fedsched::coord
