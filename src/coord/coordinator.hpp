#pragma once
// Long-lived multi-run coordinator: registry + worker pool + admission.
//
// One Coordinator serves many concurrent experiments from a single process.
// Each admitted run is decomposed into round-sized steps
// (coord/train_job.hpp, coord/fleet_job.hpp); a pool of workers drains a
// FIFO ready queue, runs one step, parks the run behind its fresh
// checkpoint, and requeues it at the tail. Interleaving therefore happens
// only at round boundaries, and every step derives its randomness from the
// run's own spec'd seed — a run's RunResult and trace bytes are identical
// whether it ran alone or multiplexed with arbitrary neighbors, and across
// any number of coordinator kill/restart cycles (the constructor rescans the
// registry root and requeues every in-flight run from its checkpoint; a
// corrupt run directory is quarantined by the scan instead of blocking the
// healthy runs' recovery).
//
// Admission control: a spec whose resident client count exceeds the cap, a
// duplicate id, or a full queue is rejected before any registry write — a
// rejected submit leaves zero trace on disk or in memory. Queued runs wait;
// dispatch additionally respects max_concurrent_rounds and the resident-
// client budget across in-flight steps (head-of-queue order, so admission
// order is completion-capacity order).
//
// The wire entry point is handle_frame(): decode (hardened, coord/wire.hpp)
// happens strictly before dispatch, so a malformed frame provably cannot
// change coordinator state — it yields an {"ok":false,...} reply frame.
//
// Robustness plane (coord/chaos.hpp):
//   * config.chaos arms the deterministic fault injector. A ChaosCrash
//     thrown at a write point freezes the coordinator — stop flag set, no
//     further registry writes, chaos_crashed() true — simulating SIGKILL
//     while staying in-process; recovery is constructing a fresh Coordinator
//     over the same root, exactly the real restart path.
//   * config.watchdog_s > 0 starts a watchdog that marks any step exceeding
//     that wall-clock budget failed, releases its capacity, and replaces the
//     (possibly wedged) worker thread so the queue keeps draining.
//   * durable_writes gates fsync-before-rename in the registry.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "coord/chaos/chaos.hpp"
#include "coord/registry.hpp"
#include "coord/spec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fedsched::coord {

struct CoordinatorConfig {
  std::string root;                    // registry directory (required)
  std::size_t workers = 2;             // worker threads (min 1)
  std::size_t max_concurrent_rounds = 2;   // steps in flight at once
  std::size_t max_resident_clients = 1'000'000;  // summed over in-flight steps
  std::size_t max_queued_runs = 16;    // admitted runs awaiting a worker
  /// Coordinator operations trace (coord_admit / coord_reject /
  /// coord_round_dispatch JSONL). Empty = disabled. This is an operational
  /// log — dispatch order depends on host scheduling — and is deliberately
  /// separate from the per-run traces, which stay byte-deterministic.
  std::string trace_path;
  /// fsync temp files and directories around registry renames (power-loss
  /// durability). Off by default so tests stay fast.
  bool durable_writes = false;
  /// > 0 starts the per-run wall-clock watchdog: a step older than this many
  /// real seconds is marked failed and its worker replaced. 0 = off.
  double watchdog_s = 0.0;
  double watchdog_poll_ms = 20.0;
  /// Deterministic fault injection (disabled config = byte-inert).
  chaos::ChaosConfig chaos;
};

enum class RunStatus { kSubmitted, kAdmitted, kRunning, kCheckpointed, kDone, kFailed };
[[nodiscard]] const char* run_status_name(RunStatus status);

struct RunInfo {
  RunSpec spec;
  RunStatus status = RunStatus::kSubmitted;
  std::size_t rounds_completed = 0;
  std::string error;  // set when status == kFailed
};

struct SubmitOutcome {
  bool accepted = false;
  std::string error;  // set when rejected
};

class Coordinator {
 public:
  /// Scans `config.root`, requeues every non-terminal run (checkpoint
  /// resume, or round zero if it never stepped), quarantines corrupt run
  /// directories, and starts the workers (and watchdog, when configured).
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Admit `spec` or reject it (duplicate id, oversized fleet, full queue).
  /// Admission persists spec.json before returning; rejection writes nothing.
  SubmitOutcome submit(const RunSpec& spec);

  [[nodiscard]] std::optional<RunInfo> status(const std::string& id) const;
  [[nodiscard]] std::vector<RunInfo> list() const;

  /// Disk-backed artifacts; throw std::runtime_error when not yet available.
  [[nodiscard]] std::string trace_bytes(const std::string& id) const;
  [[nodiscard]] std::string result_document(const std::string& id) const;
  [[nodiscard]] std::string checkpoint_bytes(const std::string& id) const;

  /// Block until the ready queue is empty and no step is in flight (or the
  /// coordinator stopped / chaos-crashed).
  void wait_all_done();

  /// Stop dispatching; in-flight steps finish (and checkpoint) first. Safe
  /// to call repeatedly; the destructor calls it.
  void stop();

  /// Protocol dispatch: a request document {"verb": ...} to a reply
  /// document {"ok": bool, ...}. Never throws; errors become replies.
  [[nodiscard]] std::string handle_request_json(const std::string& request);
  /// Wire entry point: decode → dispatch → encode. A frame that fails
  /// decoding yields an error reply frame without touching any state.
  [[nodiscard]] std::string handle_frame(const std::string& frame);

  /// Set once a "shutdown" verb has been handled; the socket server polls
  /// this to leave its accept loop.
  [[nodiscard]] bool shutdown_requested() const;

  /// True once an injected ChaosCrash "killed" the process: all dispatch and
  /// registry writes are frozen; the only way forward is a fresh Coordinator
  /// over the same root.
  [[nodiscard]] bool chaos_crashed() const;

  /// The fault injector (shared with the socket server for frame chaos).
  [[nodiscard]] chaos::ChaosInjector& chaos() noexcept { return chaos_; }

  /// Run directories the startup scan set aside, in scan order.
  [[nodiscard]] std::vector<QuarantineRecord> quarantined() const;

  /// Service counters (submits, steps, failures, watchdog kills, ...) as a
  /// deterministic JSON document.
  [[nodiscard]] std::string metrics_json() const;

  /// Record a service-plane event (used by the socket server for connection
  /// drops) in the operations trace, bumping `counter` when non-null.
  void record_event(const common::JsonObject& event, const char* counter);

  [[nodiscard]] const RunRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] const CoordinatorConfig& config() const noexcept { return config_; }

 private:
  struct Entry {
    RunSpec spec;
    RunStatus status = RunStatus::kAdmitted;
    std::size_t rounds_completed = 0;
    std::string error;
  };

  /// One dispatched step, keyed by token so the watchdog and the worker can
  /// race for its completion: whoever erases the token owns the outcome.
  struct InFlight {
    std::string id;
    std::size_t resident = 0;
    std::chrono::steady_clock::time_point started;
  };

  void worker_loop(std::size_t worker_index);
  void watchdog_loop();
  void enter_crashed_state();                    // callers hold mu_
  [[nodiscard]] bool head_dispatchable() const;  // callers hold mu_
  void emit(const common::JsonObject& event);    // callers hold mu_
  [[nodiscard]] RunInfo info_of(const Entry& e) const;
  [[nodiscard]] std::string reply_status(const std::string& id);

  CoordinatorConfig config_;
  RunRegistry registry_;
  chaos::ChaosInjector chaos_;
  obs::TraceWriter trace_;        // guarded by mu_
  obs::MetricsRegistry metrics_;  // guarded by mu_

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::condition_variable watchdog_cv_;
  std::map<std::string, Entry> runs_;
  std::deque<std::string> ready_;
  std::map<std::uint64_t, InFlight> inflight_;
  std::uint64_t next_token_ = 0;
  std::vector<QuarantineRecord> quarantined_;
  std::size_t running_ = 0;
  std::size_t running_resident_ = 0;
  bool stop_ = false;
  bool shutdown_requested_ = false;
  bool crashed_ = false;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace fedsched::coord
