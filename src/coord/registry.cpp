#include "coord/registry.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>

namespace fedsched::coord {

namespace fs = std::filesystem;

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("registry: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("registry: write failed for " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("registry: cannot rename " + tmp + " -> " + path +
                             ": " + ec.message());
  }
}

std::string read_file(const std::string& path, const std::string& context) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(context + ": cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error(context + ": read failed for " + path);
  return bytes;
}

RunRegistry::RunRegistry(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw std::runtime_error("registry: root must not be empty");
  fs::create_directories(root_);
}

std::string RunRegistry::run_dir(const std::string& id) const {
  return root_ + "/" + id;
}
std::string RunRegistry::spec_path(const std::string& id) const {
  return run_dir(id) + "/spec.json";
}
std::string RunRegistry::meta_path(const std::string& id) const {
  return run_dir(id) + "/meta.json";
}
std::string RunRegistry::ckpt_path(const std::string& id) const {
  return run_dir(id) + "/ckpt.bin";
}
std::string RunRegistry::trace_path(const std::string& id) const {
  return run_dir(id) + "/trace.jsonl";
}
std::string RunRegistry::result_path(const std::string& id) const {
  return run_dir(id) + "/result.json";
}
std::string RunRegistry::error_path(const std::string& id) const {
  return run_dir(id) + "/error.txt";
}

bool RunRegistry::exists(const std::string& id) const {
  return fs::exists(spec_path(id));
}

void RunRegistry::persist_spec(const RunSpec& spec) const {
  fs::create_directories(run_dir(spec.id));
  write_file_atomic(spec_path(spec.id), run_spec_json(spec) + "\n");
}

void RunRegistry::write_meta(const std::string& id,
                             std::size_t rounds_completed) const {
  common::JsonObject o;
  o.field("rounds_completed", rounds_completed);
  write_file_atomic(meta_path(id), o.str() + "\n");
}

void RunRegistry::write_result(const std::string& id,
                               const std::string& json) const {
  write_file_atomic(result_path(id), json + "\n");
}

void RunRegistry::write_error(const std::string& id,
                              const std::string& message) const {
  write_file_atomic(error_path(id), message + "\n");
}

std::string RunRegistry::read_result(const std::string& id) const {
  return read_file(result_path(id), "registry: run '" + id + "' result");
}

std::string RunRegistry::read_trace(const std::string& id) const {
  return read_file(trace_path(id), "registry: run '" + id + "' trace");
}

std::string RunRegistry::read_checkpoint(const std::string& id) const {
  return read_file(ckpt_path(id), "registry: run '" + id + "' checkpoint");
}

std::vector<RecoveredRun> RunRegistry::scan() const {
  std::vector<RecoveredRun> runs;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_)) {
    if (!entry.is_directory()) continue;
    const std::string id = entry.path().filename().string();
    if (!fs::exists(spec_path(id))) continue;  // not a run directory

    RecoveredRun run;
    run.spec = parse_run_spec(
        common::json_parse(read_file(spec_path(id), "registry: spec")));
    if (run.spec.id != id) {
      throw std::runtime_error("registry: spec id '" + run.spec.id +
                               "' does not match directory '" + id + "'");
    }
    if (fs::exists(result_path(id))) {
      run.state = RecoveredState::kDone;
      run.rounds_completed = run.spec.total_rounds();
    } else if (fs::exists(error_path(id))) {
      run.state = RecoveredState::kFailed;
      run.error = read_file(error_path(id), "registry: error");
      while (!run.error.empty() && run.error.back() == '\n') run.error.pop_back();
    } else if (fs::exists(ckpt_path(id)) && fs::exists(meta_path(id))) {
      const common::JsonValue meta =
          common::json_parse(read_file(meta_path(id), "registry: meta"));
      const double n = meta.get_number("rounds_completed", 0.0);
      if (!(n >= 0.0) || n != std::floor(n)) {
        throw std::runtime_error("registry: run '" + id + "' has corrupt meta");
      }
      run.state = RecoveredState::kResumable;
      run.rounds_completed = static_cast<std::size_t>(n);
    } else {
      run.state = RecoveredState::kFresh;  // admitted but never stepped
    }
    runs.push_back(std::move(run));
  }
  std::sort(runs.begin(), runs.end(),
            [](const RecoveredRun& a, const RecoveredRun& b) {
              return a.spec.id < b.spec.id;
            });
  return runs;
}

}  // namespace fedsched::coord
