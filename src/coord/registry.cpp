#include "coord/registry.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string_view>

#include "coord/chaos/chaos.hpp"
#include "fl/checkpoint/codec.hpp"

namespace fedsched::coord {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("registry: " + what + ": " +
                           std::strerror(errno));
}

// POSIX write path used in durable mode so the temp file's bytes can be
// fsync'd before the rename makes them visible.
void write_bytes_durable(const std::string& path, const std::string& bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) sys_fail("cannot open " + path);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      sys_fail("write failed for " + path);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("fsync failed for " + path);
  }
  if (::close(fd) != 0) sys_fail("close failed for " + path);
}

// The rename itself is only durable once the directory entry is, so durable
// mode also fsyncs the parent directory.
void fsync_parent_dir(const std::string& path) {
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) sys_fail("cannot open directory " + parent.string());
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("fsync failed for directory " + parent.string());
  }
  ::close(fd);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& bytes,
                       const AtomicWriteOptions& options) {
  chaos::ChaosInjector* chaos =
      (options.chaos != nullptr && options.chaos->enabled()) ? options.chaos
                                                             : nullptr;
  const std::uint64_t op = chaos != nullptr ? chaos->begin_write() : 0;
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kBeforeTmp, path);
  }
  const std::string tmp = path + ".tmp";
  if (options.durable) {
    write_bytes_durable(tmp, bytes);
  } else {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("registry: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("registry: write failed for " + tmp);
  }
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kAfterTmp, path);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("registry: cannot rename " + tmp + " -> " + path +
                             ": " + ec.message());
  }
  if (options.durable) fsync_parent_dir(path);
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kAfterRename, path);
  }
}

std::string read_file(const std::string& path, const std::string& context) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(context + ": cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) throw std::runtime_error(context + ": read failed for " + path);
  return bytes;
}

void validate_sealed_artifact(const std::string& bytes,
                              const std::string& context) {
  namespace fc = fl::checkpoint;
  if (bytes.size() < fc::kSealedHeaderSize) {
    throw std::runtime_error(context + ": truncated sealed artifact (" +
                             std::to_string(bytes.size()) + " bytes)");
  }
  std::uint64_t declared = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&declared, bytes.data() + 8, sizeof declared);
  std::memcpy(&checksum, bytes.data() + 16, sizeof checksum);
  const std::size_t payload_size = bytes.size() - fc::kSealedHeaderSize;
  if (declared != payload_size) {
    throw std::runtime_error(context + ": payload length mismatch (header " +
                             std::to_string(declared) + ", file " +
                             std::to_string(payload_size) + ")");
  }
  const std::string_view payload(bytes.data() + fc::kSealedHeaderSize,
                                 payload_size);
  if (fc::fnv1a64(payload) != checksum) {
    throw std::runtime_error(context + ": checksum mismatch");
  }
}

RunRegistry::RunRegistry(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw std::runtime_error("registry: root must not be empty");
  fs::create_directories(root_);
}

std::string RunRegistry::run_dir(const std::string& id) const {
  return root_ + "/" + id;
}
std::string RunRegistry::spec_path(const std::string& id) const {
  return run_dir(id) + "/spec.json";
}
std::string RunRegistry::meta_path(const std::string& id) const {
  return run_dir(id) + "/meta.json";
}
std::string RunRegistry::ckpt_path(const std::string& id) const {
  return run_dir(id) + "/ckpt.bin";
}
std::string RunRegistry::trace_path(const std::string& id) const {
  return run_dir(id) + "/trace.jsonl";
}
std::string RunRegistry::result_path(const std::string& id) const {
  return run_dir(id) + "/result.json";
}
std::string RunRegistry::error_path(const std::string& id) const {
  return run_dir(id) + "/error.txt";
}

bool RunRegistry::exists(const std::string& id) const {
  return fs::exists(spec_path(id));
}

void RunRegistry::persist_spec(const RunSpec& spec) const {
  fs::create_directories(run_dir(spec.id));
  write_file_atomic(spec_path(spec.id), run_spec_json(spec) + "\n",
                    write_options());
}

void RunRegistry::write_meta(const std::string& id,
                             std::size_t rounds_completed) const {
  common::JsonObject o;
  o.field("rounds_completed", rounds_completed);
  write_file_atomic(meta_path(id), o.str() + "\n", write_options());
}

void RunRegistry::write_result(const std::string& id,
                               const std::string& json) const {
  write_file_atomic(result_path(id), json + "\n", write_options());
}

void RunRegistry::write_error(const std::string& id,
                              const std::string& message) const {
  write_file_atomic(error_path(id), message + "\n", write_options());
}

std::string RunRegistry::read_result(const std::string& id) const {
  return read_file(result_path(id), "registry: run '" + id + "' result");
}

std::string RunRegistry::read_trace(const std::string& id) const {
  return read_file(trace_path(id), "registry: run '" + id + "' trace");
}

std::string RunRegistry::read_checkpoint(const std::string& id) const {
  return read_file(ckpt_path(id), "registry: run '" + id + "' checkpoint");
}

QuarantineRecord RunRegistry::quarantine_run(const std::string& id,
                                             const std::string& reason) {
  std::string dest = run_dir(id) + ".quarantined";
  for (int n = 2; fs::exists(dest); ++n) {
    dest = run_dir(id) + ".quarantined." + std::to_string(n);
  }
  std::error_code ec;
  fs::rename(run_dir(id), dest, ec);
  if (ec) {
    throw std::runtime_error("registry: cannot quarantine " + run_dir(id) +
                             " -> " + dest + ": " + ec.message());
  }
  {
    // Best effort: the rename IS the quarantine; the reason file is an aid.
    std::ofstream out(dest + "/quarantine.txt", std::ios::trunc);
    if (out) out << reason << "\n";
  }
  QuarantineRecord record;
  record.id = id;
  record.moved_to = fs::path(dest).filename().string();
  record.reason = reason;
  return record;
}

ScanOutcome RunRegistry::scan() {
  ScanOutcome out;
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(root_)) {
    if (!entry.is_directory()) continue;
    names.push_back(entry.path().filename().string());
  }
  // directory_iterator order is unspecified; sort so quarantine records and
  // tmp sweeps happen in a stable order too.
  std::sort(names.begin(), names.end());

  for (const std::string& id : names) {
    if (id.find(".quarantined") != std::string::npos) continue;
    const std::string dir = run_dir(id);

    // Sweep temp files left by a write that died between tmp and rename.
    for (const fs::directory_entry& file : fs::directory_iterator(dir)) {
      if (!file.is_regular_file()) continue;
      if (!ends_with(file.path().filename().string(), ".tmp")) continue;
      std::error_code ec;
      fs::remove(file.path(), ec);
      if (!ec) ++out.stale_tmp_removed;
    }

    if (!fs::exists(spec_path(id))) continue;  // not a run directory

    try {
      RecoveredRun run;
      run.spec = parse_run_spec(
          common::json_parse(read_file(spec_path(id), "registry: spec")));
      if (run.spec.id != id) {
        throw std::runtime_error("spec id '" + run.spec.id +
                                 "' does not match directory '" + id + "'");
      }
      if (fs::exists(result_path(id))) {
        run.state = RecoveredState::kDone;
        run.rounds_completed = run.spec.total_rounds();
      } else if (fs::exists(error_path(id))) {
        run.state = RecoveredState::kFailed;
        run.error = read_file(error_path(id), "registry: error");
        while (!run.error.empty() && run.error.back() == '\n') run.error.pop_back();
      } else if (fs::exists(ckpt_path(id)) && fs::exists(meta_path(id))) {
        const common::JsonValue meta =
            common::json_parse(read_file(meta_path(id), "registry: meta"));
        const double n = meta.get_number("rounds_completed", 0.0);
        if (!(n >= 0.0) || n != std::floor(n)) {
          throw std::runtime_error("corrupt meta for run '" + id + "'");
        }
        // A resumable run will be re-opened from this checkpoint; catch a
        // torn/corrupt one now rather than failing the run mid-step.
        validate_sealed_artifact(read_file(ckpt_path(id), "registry: ckpt"),
                                 "checkpoint for run '" + id + "'");
        run.state = RecoveredState::kResumable;
        run.rounds_completed = static_cast<std::size_t>(n);
      } else {
        run.state = RecoveredState::kFresh;  // admitted but never stepped
      }
      out.runs.push_back(std::move(run));
    } catch (const std::exception& ex) {
      out.quarantined.push_back(quarantine_run(id, ex.what()));
    }
  }
  std::sort(out.runs.begin(), out.runs.end(),
            [](const RecoveredRun& a, const RecoveredRun& b) {
              return a.spec.id < b.spec.id;
            });
  return out;
}

}  // namespace fedsched::coord
