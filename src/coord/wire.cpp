#include "coord/wire.hpp"

#include <cstring>
#include <stdexcept>

#include "fl/checkpoint/codec.hpp"

namespace fedsched::coord {

namespace fc = fl::checkpoint;

namespace {
const std::string kContext = "coord wire";
const std::string kArtifact = "fedsched wire frame";
}  // namespace

std::string encode_frame(std::string_view json) {
  if (json.size() > kMaxFramePayload) {
    throw std::runtime_error(kContext + ": frame payload too large");
  }
  return fc::seal(kWireMagic, kWireVersion, json);
}

std::string decode_frame(std::string_view frame) {
  // Pre-check the declared size against the cap before open() touches the
  // checksum, so the oversized-length error is distinct from corruption.
  if (frame.size() >= fc::kSealedHeaderSize) {
    std::uint64_t size = 0;
    std::memcpy(&size, frame.data() + 8, sizeof(size));
    if (size > kMaxFramePayload) {
      throw std::runtime_error(kContext + ": frame payload too large");
    }
  }
  const std::string_view payload =
      fc::open(kWireMagic, kWireVersion, frame, kContext, kArtifact);
  return std::string(payload);
}

void FrameBuffer::feed(std::string_view bytes) { buf_.append(bytes); }

std::optional<std::string> FrameBuffer::take_frame() {
  if (buf_.size() < fc::kSealedHeaderSize) return std::nullopt;
  // Validate the fixed header as soon as it arrives — a bad magic, version,
  // or absurd length fails immediately rather than after buffering MBs of a
  // stream we will never be able to parse.
  std::uint32_t magic = 0, version = 0;
  std::uint64_t size = 0;
  std::memcpy(&magic, buf_.data(), sizeof(magic));
  std::memcpy(&version, buf_.data() + 4, sizeof(version));
  std::memcpy(&size, buf_.data() + 8, sizeof(size));
  if (magic != kWireMagic) {
    throw std::runtime_error(kContext + ": stream is not " + kArtifact + "s");
  }
  if (version != kWireVersion) {
    throw std::runtime_error(kContext + ": unsupported frame version " +
                             std::to_string(version));
  }
  if (size > kMaxFramePayload) {
    throw std::runtime_error(kContext + ": frame payload too large");
  }
  const std::size_t total = fc::kSealedHeaderSize + static_cast<std::size_t>(size);
  if (buf_.size() < total) return std::nullopt;
  std::string payload = decode_frame(std::string_view(buf_).substr(0, total));
  buf_.erase(0, total);
  return payload;
}

std::string to_hex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::string from_hex(std::string_view hex) {
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) {
    throw std::runtime_error("from_hex: odd-length input");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::runtime_error("from_hex: bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace fedsched::coord
