#include "coord/train_job.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "common/rng.hpp"
#include "coord/chaos/chaos.hpp"
#include "core/experiment.hpp"
#include "data/synth.hpp"
#include "fl/checkpoint/checkpoint.hpp"
#include "sched/baselines.hpp"
#include "sched/fed_lbap.hpp"

namespace fedsched::coord {

namespace {

sched::Baseline baseline_of(const std::string& name) {
  if (name == "equal") return sched::Baseline::kEqual;
  if (name == "prop") return sched::Baseline::kProportional;
  if (name == "random") return sched::Baseline::kRandom;
  throw std::runtime_error("train job: unknown baseline policy '" + name + "'");
}

void rename_over(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    throw std::runtime_error("train job: cannot rename " + from + " -> " + to +
                             ": " + ec.message());
  }
}

}  // namespace

TrainJob build_train_job(const TrainRunSpec& spec, obs::TraceWriter* trace) {
  TrainJob job;
  const data::SynthConfig ds_config =
      spec.dataset == "cifar" ? data::cifar_like() : data::mnist_like();
  job.phones = device::testbed(spec.testbed);
  const nn::Arch arch = spec.model == "VGG6" ? nn::Arch::kVgg6 : nn::Arch::kLeNet;
  job.desc = arch == nn::Arch::kLeNet ? device::lenet_desc() : device::vgg6_desc();

  job.train = data::generate_balanced(ds_config, spec.samples, spec.seed);
  job.test = data::generate_balanced(ds_config, spec.samples / 3, spec.seed + 1);

  // Schedule at full simulator scale, materialize proportionally. The RNG
  // stream order — baseline assignment first (when used), partition second —
  // is load-bearing: it matches `fedsched_cli train` draw for draw.
  job.users = core::build_profiles(job.phones, job.desc,
                                   device::NetworkType::kWifi, 60'000);
  common::Rng rng(spec.seed + 2);
  if (spec.policy == "fed-lbap") {
    job.assignment = sched::fed_lbap(job.users, 600, 100, trace).assignment;
  } else {
    job.assignment = sched::assign_baseline(baseline_of(spec.policy), job.users,
                                            600, 100, rng);
  }
  std::vector<double> weights;
  weights.reserve(job.assignment.shards_per_user.size());
  for (std::size_t k : job.assignment.shards_per_user) {
    weights.push_back(static_cast<double>(k));
  }
  job.partition = data::partition_with_sizes_iid(
      job.train, data::proportional_sizes(job.train.size(), weights), rng);

  job.config.rounds = spec.rounds;
  job.config.seed = spec.seed + 3;
  job.config.parallelism = spec.parallelism;
  job.config.evaluate_each_round = spec.evaluate_each_round;

  job.model_spec.arch = arch;
  job.model_spec.in_channels = ds_config.channels;
  job.model_spec.in_h = ds_config.height;
  job.model_spec.in_w = ds_config.width;
  return job;
}

TrainStepOutcome run_train_step(const TrainRunSpec& spec,
                                const std::string& ckpt_path,
                                const std::string& trace_path,
                                std::size_t completed_rounds,
                                chaos::ChaosInjector* chaos) {
  if (completed_rounds >= spec.rounds) {
    throw std::runtime_error("train job: run already complete");
  }
  if (chaos != nullptr && !chaos->enabled()) chaos = nullptr;

  // Torn recovery state: a crash between the checkpoint rename and the meta
  // write leaves the checkpoint one round ahead of `completed_rounds`. The
  // round is already durable, so replay it instead of re-simulating.
  bool final_replay = false;
  if (completed_rounds > 0) {
    const std::uint64_t have = fl::checkpoint::peek_rounds_completed(ckpt_path);
    if (have == completed_rounds + 1 && have < spec.rounds) {
      // Mid-run: the post-step trace file is exactly the schedule events the
      // job rebuild emits plus the checkpoint's captured prefix.
      const fl::checkpoint::RunState state =
          fl::checkpoint::load_checkpoint(ckpt_path);
      obs::TraceWriter trace = obs::TraceWriter::to_file(trace_path);
      (void)build_train_job(spec, &trace);  // re-emits the schedule events
      trace.write_raw(state.trace_prefix,
                      static_cast<std::size_t>(state.trace_events));
      trace.flush();
      TrainStepOutcome replayed;
      replayed.rounds_completed = static_cast<std::size_t>(have);
      replayed.done = false;
      return replayed;
    }
    final_replay = have == completed_rounds + 1;  // == spec.rounds
    if (!final_replay && have != completed_rounds) {
      throw std::runtime_error("train job: checkpoint round mismatch");
    }
  }

  // The trace file is rewritten from scratch every step: the job rebuild
  // re-emits the schedule event, and the runner replays the checkpointed
  // prefix before appending the new round — same mechanics as a CLI resume.
  obs::TraceWriter trace = obs::TraceWriter::to_file(trace_path);
  TrainJob job = build_train_job(spec, &trace);
  job.config.trace = &trace;
  job.config.checkpoint.path = ckpt_path + ".tmp";
  job.config.checkpoint.every_rounds = 1;
  const std::size_t next = completed_rounds + 1;
  job.config.checkpoint.halt_after_rounds =
      !final_replay && next < spec.rounds ? next : 0;
  if (completed_rounds > 0) job.config.checkpoint.resume_from = ckpt_path;

  if (final_replay) {
    // The final round's checkpoint is already durable; resuming from it runs
    // zero rounds and deterministically re-derives the tail the crash lost
    // (final evaluation + run_end trace event). No temp file is written, so
    // there is nothing to rename and no chaos write op to claim.
    fl::FedAvgRunner runner(job.train, job.test, job.model_spec, job.desc,
                            job.phones, device::NetworkType::kWifi, job.config);
    TrainStepOutcome out;
    out.result = runner.run(job.partition);
    out.done = true;
    out.rounds_completed = spec.rounds;
    return out;
  }

  // The runner itself writes the temp checkpoint during run(), so this step's
  // write op spans it: before-tmp fires before any byte exists, after-tmp
  // once the temp file is complete but not yet visible at ckpt_path.
  const std::uint64_t op = chaos != nullptr ? chaos->begin_write() : 0;
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kBeforeTmp, ckpt_path);
  }
  fl::FedAvgRunner runner(job.train, job.test, job.model_spec, job.desc,
                          job.phones, device::NetworkType::kWifi, job.config);
  TrainStepOutcome out;
  out.result = runner.run(job.partition);
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kAfterTmp, ckpt_path);
  }
  // The step's checkpoint (halt or final-round cadence save) lands atomically.
  rename_over(job.config.checkpoint.path, ckpt_path);
  if (chaos != nullptr) {
    chaos->crash_point(op, chaos::CrashPhase::kAfterRename, ckpt_path);
  }
  out.done = !out.result.halted;
  out.rounds_completed = out.done ? spec.rounds : next;
  return out;
}

fl::RunResult run_train_oneshot(const TrainRunSpec& spec,
                                const std::string& ckpt_path,
                                const std::string& trace_path) {
  obs::TraceWriter trace = obs::TraceWriter::to_file(trace_path);
  TrainJob job = build_train_job(spec, &trace);
  job.config.trace = &trace;
  job.config.checkpoint.path = ckpt_path;
  job.config.checkpoint.every_rounds = 1;
  fl::FedAvgRunner runner(job.train, job.test, job.model_spec, job.desc,
                          job.phones, device::NetworkType::kWifi, job.config);
  return runner.run(job.partition);
}

std::string train_result_json(const TrainRunSpec& spec,
                              const fl::RunResult& result) {
  std::string rounds = "[";
  for (std::size_t i = 0; i < result.rounds.size(); ++i) {
    const fl::RoundRecord& r = result.rounds[i];
    common::JsonObject ro;
    ro.field("round", r.round)
        .field("round_seconds", r.round_seconds)
        .field("cumulative_seconds", r.cumulative_seconds)
        .field("mean_train_loss", r.mean_train_loss)
        .field("test_accuracy", r.test_accuracy)
        .field("completed_clients", r.completed_clients)
        .field("dropped_clients", r.dropped_clients);
    if (i > 0) rounds += ",";
    rounds += ro.str();
  }
  rounds += "]";
  common::JsonObject o;
  o.field("kind", "train")
      .field("rounds", result.rounds.size())
      .field("final_accuracy", result.final_accuracy)
      .field("total_seconds", result.total_seconds)
      .field("seed", spec.seed)
      .field_raw("round_records", rounds);
  return o.str();
}

}  // namespace fedsched::coord
